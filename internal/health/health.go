// Package health is the streaming monitoring layer of the adaptive
// framework: a set of online analyzers that subscribe to the
// internal/telemetry event stream and continuously answer the questions the
// raw stream only records — is the branch-probability estimator drifting
// away from reality, are the run's service-level objectives (deadline
// misses, lateness, energy) still inside budget, and which tasks, PEs and
// links dominate critical-path delay and energy.
//
// The entry point is the AnalyzerRecorder, a fan-in telemetry.Recorder that
// feeds every event to three analyzers:
//
//   - the estimator drift detector (drift.go) compares each fork's windowed
//     probability estimate against an EWMA of the realized branch outcomes
//     and alerts when the error EWMA crosses a threshold;
//   - the SLO tracker (slo.go) maintains rolling lateness/makespan/energy
//     quantiles (reusing internal/stats.Histogram), a deadline-miss budget
//     burn rate, miss-streak detection, and the circuit-breaker/fallback
//     counters of the recovery layer;
//   - the hotspot attributor (hotspot.go) ranks tasks, PEs and links by
//     their contribution to critical-path delay and energy across instances.
//
// Attach an AnalyzerRecorder anywhere a telemetry.Recorder goes (directly,
// or fanned in next to other sinks via telemetry.MultiRecorder); it observes
// only — the runtime's outputs are bit-for-bit identical with or without it.
// Health() snapshots the full state at any time (also exposed as JSON over
// HTTP via ServeHTTP), Snapshot.Report renders the deterministic diagnosis
// text the `ctgsched analyze` subcommand prints, and alerts are emitted as
// typed telemetry.KindHealthAlert events into an optional sink plus
// mirrored into "adaptive.health.*" metrics.
package health

import (
	"encoding/json"
	"net/http"
	"sync"

	"ctgdvfs/internal/telemetry"
)

// Defaults for the analyzer knobs; see Options.
const (
	DefaultDriftAlpha     = 0.1
	DefaultDriftThreshold = 0.2
	DefaultMissStreak     = 3
	DefaultMaxMissRate    = 0.05
	DefaultWindowSize     = 1024
	DefaultHotspots       = 5
	DefaultTimeline       = 64
	DefaultSLOWarmup      = 10
)

// SLO is the service-level objective the tracker scores a run against. The
// zero value of the optional bounds disables them; MaxMissRate's zero value
// selects DefaultMaxMissRate (use a negative value to disable the miss-rate
// objective explicitly).
type SLO struct {
	// MaxMissRate is the allowed fraction of instances that miss the
	// deadline (after fallback recovery, where enabled). Zero selects
	// DefaultMaxMissRate; negative disables.
	MaxMissRate float64
	// MaxLatenessP95 bounds the rolling-window P95 lateness (0 disables).
	MaxLatenessP95 float64
	// MaxMakespanP95 bounds the rolling-window P95 makespan (0 disables).
	MaxMakespanP95 float64
	// MaxAvgEnergy bounds the running average per-instance energy
	// (0 disables).
	MaxAvgEnergy float64
}

// Options configures an AnalyzerRecorder. The zero value is a working
// configuration: every knob falls back to its Default* constant.
type Options struct {
	// DriftAlpha is the EWMA decay used both for the realized-outcome
	// frequency tracker and for the per-fork absolute-error average.
	DriftAlpha float64
	// DriftThreshold is the per-fork error-EWMA level that raises a drift
	// alert. The alert latches: it re-arms only after the error falls back
	// below half the threshold (hysteresis against flapping).
	DriftThreshold float64
	// MissStreak raises an alert after this many consecutive missed
	// instances.
	MissStreak int
	// SLO is the objective the tracker scores the run against.
	SLO SLO
	// SLOWarmup is the instance count below which SLO verdicts stay
	// "pending" (a single early miss should not instantly trip a
	// miss-rate objective). Zero selects DefaultSLOWarmup.
	SLOWarmup int
	// WindowSize bounds the rolling-quantile windows (lateness, makespan,
	// energy, drift trajectory): the last WindowSize instances.
	WindowSize int
	// Hotspots is the top-N cutoff of the snapshot's rankings.
	Hotspots int
	// Timeline bounds the decision timeline (reschedules, fallbacks, guard
	// moves, alerts); older entries are dropped, keeping the most recent.
	Timeline int

	// Alerts, when non-nil, receives one telemetry.KindHealthAlert event
	// per raised alert — fan it into the same sink as the primary stream to
	// interleave alerts with the events that caused them.
	Alerts telemetry.Recorder
	// Metrics, when non-nil, is the registry the analyzer publishes its
	// "adaptive.health.*" gauges and counters to; nil gives the analyzer a
	// private registry, exposed via AnalyzerRecorder.Metrics.
	Metrics *telemetry.Registry
}

func (o *Options) applyDefaults() {
	if o.DriftAlpha <= 0 || o.DriftAlpha > 1 {
		o.DriftAlpha = DefaultDriftAlpha
	}
	if o.DriftThreshold <= 0 {
		o.DriftThreshold = DefaultDriftThreshold
	}
	if o.MissStreak <= 0 {
		o.MissStreak = DefaultMissStreak
	}
	if o.SLO.MaxMissRate == 0 {
		o.SLO.MaxMissRate = DefaultMaxMissRate
	}
	if o.SLOWarmup <= 0 {
		o.SLOWarmup = DefaultSLOWarmup
	}
	if o.WindowSize <= 0 {
		o.WindowSize = DefaultWindowSize
	}
	if o.Hotspots <= 0 {
		o.Hotspots = DefaultHotspots
	}
	if o.Timeline <= 0 {
		o.Timeline = DefaultTimeline
	}
}

// Alert is one raised health alert.
type Alert struct {
	// Type is "drift", "miss_streak" or "slo".
	Type string `json:"type"`
	// Instance is the instance id of the event that raised the alert.
	Instance int `json:"instance"`
	// Fork is the fork index of a drift alert (-1 otherwise).
	Fork int `json:"fork"`
	// Name is the SLO verdict name of an "slo" alert.
	Name string `json:"name,omitempty"`
	// Value is the observed value that crossed Threshold.
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	// Message is the rendered one-line description.
	Message string `json:"message"`
}

// TimelineEntry is one decision-timeline record: a reschedule, fallback
// activation, guard-level move or alert, in stream order.
type TimelineEntry struct {
	Instance int    `json:"instance"`
	Kind     string `json:"kind"`
	Detail   string `json:"detail"`
}

// healthMetrics holds the analyzer's resolved registry handles.
type healthMetrics struct {
	driftErr      *telemetry.Gauge
	driftAlerts   *telemetry.Counter
	missStreak    *telemetry.Gauge
	maxMissStreak *telemetry.Gauge
	budgetBurn    *telemetry.Gauge
	sloBreaches   *telemetry.Counter
	alerts        *telemetry.Counter
}

// AnalyzerRecorder is the fan-in sink of the health layer: it implements
// telemetry.Recorder, routes every event to the drift, SLO and hotspot
// analyzers, and maintains the bounded alert list and decision timeline.
// All methods are safe for concurrent use.
type AnalyzerRecorder struct {
	mu   sync.Mutex
	opts Options

	events  int
	drift   driftState
	slo     sloState
	hot     hotState
	avail   availState
	power   powerState
	pipe    pipeState
	salerts seriesAlertState

	timeline        []TimelineEntry
	timelineDropped int
	alerts          []Alert
	alertsTotal     int

	metrics *telemetry.Registry
	hm      healthMetrics
}

// New builds an AnalyzerRecorder; zero-value Options select the defaults.
func New(opts Options) *AnalyzerRecorder {
	opts.applyDefaults()
	a := &AnalyzerRecorder{opts: opts}
	a.slo.init(&opts)
	a.hot.init()
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	a.metrics = reg
	a.hm = healthMetrics{
		driftErr:      reg.Gauge("adaptive.health.drift_err"),
		driftAlerts:   reg.Counter("adaptive.health.drift_alerts"),
		missStreak:    reg.Gauge("adaptive.health.miss_streak"),
		maxMissStreak: reg.Gauge("adaptive.health.max_miss_streak"),
		budgetBurn:    reg.Gauge("adaptive.health.budget_burn"),
		sloBreaches:   reg.Counter("adaptive.health.slo_breaches"),
		alerts:        reg.Counter("adaptive.health.alerts"),
	}
	return a
}

// Metrics returns the registry the analyzer publishes to — the one passed
// via Options.Metrics, or the private default. Never nil.
func (a *AnalyzerRecorder) Metrics() *telemetry.Registry { return a.metrics }

// Record consumes one telemetry event.
func (a *AnalyzerRecorder) Record(e telemetry.Event) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.events++
	switch e.Kind {
	case telemetry.KindEstimate:
		a.drift.observe(a, e)
	case telemetry.KindInstanceFinish:
		a.hot.commit(e.Instance)
		a.slo.observeFinish(a, e)
	case telemetry.KindTaskSlice:
		a.hot.observeTask(e)
	case telemetry.KindCommSlice:
		a.hot.observeComm(e)
	case telemetry.KindOverrun:
		a.slo.overruns++
	case telemetry.KindReschedule:
		a.slo.observeReschedule(e)
		detail := e.Reason
		if e.CacheHit {
			detail += " (cache hit)"
		}
		a.note(e.Instance, "reschedule", detail)
	case telemetry.KindFallback:
		a.slo.observeFallback(e)
		detail := "missed again"
		if e.Met {
			detail = "met deadline"
		}
		a.note(e.Instance, "fallback", detail)
	case telemetry.KindGuardLevel:
		a.slo.observeGuard(e)
		a.note(e.Instance, "guard_level", levelMove(e.Level2, e.Level))
	case telemetry.KindPEDown, telemetry.KindPEUp,
		telemetry.KindLinkDown, telemetry.KindLinkUp, telemetry.KindRemap:
		a.avail.observe(a, e)
	case telemetry.KindBudgetExceeded, telemetry.KindPERevoked,
		telemetry.KindTenantDegraded, telemetry.KindTenantRestored:
		a.power.observe(a, e)
	case telemetry.KindTenantPanic:
		a.note(e.Instance, "tenant_panic", "contained worker panic: "+e.Reason)
	case telemetry.KindTenantRestart:
		a.note(e.Instance, "tenant_restart", e.Reason)
	case telemetry.KindRestore:
		detail := "from latest snapshot"
		if e.Reason == "fallback" {
			detail = "from previous snapshot generation"
		}
		a.note(e.Instance, "restore", detail)
	case telemetry.KindSpan:
		a.pipe.observe(e)
	case telemetry.KindAlertFiring, telemetry.KindAlertResolved:
		a.salerts.observe(a, e)
	}
}

// note appends one timeline entry, evicting the oldest past capacity.
func (a *AnalyzerRecorder) note(instance int, kind, detail string) {
	e := TimelineEntry{Instance: instance, Kind: kind, Detail: detail}
	if len(a.timeline) == a.opts.Timeline {
		copy(a.timeline, a.timeline[1:])
		a.timeline[len(a.timeline)-1] = e
		a.timelineDropped++
		return
	}
	a.timeline = append(a.timeline, e)
}

// raise records one alert: bounded buffer, counter, metrics mirror, and the
// optional typed event into the alert sink. Called with the mutex held.
func (a *AnalyzerRecorder) raise(al Alert) {
	a.alertsTotal++
	a.hm.alerts.Inc()
	if len(a.alerts) == a.opts.Timeline {
		copy(a.alerts, a.alerts[1:])
		a.alerts[len(a.alerts)-1] = al
	} else {
		a.alerts = append(a.alerts, al)
	}
	a.note(al.Instance, "alert", al.Message)
	if a.opts.Alerts != nil {
		a.opts.Alerts.Record(telemetry.Event{
			Kind:      telemetry.KindHealthAlert,
			Instance:  al.Instance,
			Fork:      al.Fork,
			Reason:    al.Type,
			Name:      al.Name,
			Value:     al.Value,
			Threshold: al.Threshold,
		})
	}
}

// Health snapshots the analyzer state.
func (a *AnalyzerRecorder) Health() Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := Snapshot{
		Events:          a.events,
		Instances:       a.slo.instances,
		Drift:           a.drift.snapshot(),
		SLO:             a.slo.snapshot(&a.opts),
		Hotspots:        a.hot.snapshot(a.opts.Hotspots),
		Availability:    a.avail.snapshot(),
		Power:           a.power.snapshot(),
		Pipeline:        a.pipe.snapshot(),
		SeriesAlerts:    a.salerts.snapshot(),
		Timeline:        append([]TimelineEntry(nil), a.timeline...),
		TimelineDropped: a.timelineDropped,
		Alerts:          append([]Alert(nil), a.alerts...),
		AlertsTotal:     a.alertsTotal,
	}
	if s.Instances == 0 {
		// Streams without instance summaries (e.g. converted Chrome traces)
		// still carry per-instance slices; fall back to the hotspot
		// attributor's instance count.
		s.Instances = a.hot.instanceCount()
	}
	return s
}

// ServeHTTP writes the Health snapshot as indented JSON — mount the analyzer
// on a mux (e.g. at /health) next to the metrics registry.
func (a *AnalyzerRecorder) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(a.Health()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Analyze runs a recorded event stream through a fresh AnalyzerRecorder and
// returns the resulting snapshot — the offline entry point behind
// `ctgsched analyze`.
func Analyze(events []telemetry.Event, opts Options) Snapshot {
	a := New(opts)
	for _, e := range events {
		a.Record(e)
	}
	return a.Health()
}
