package health

import (
	"sort"

	"ctgdvfs/internal/telemetry"
)

// pipeState accumulates the reschedule pipeline's phase latencies from
// pipeline_span events (one per timed phase: diff, dls, stretch, validate).
type pipeState struct {
	spans  int
	phases map[string]*phaseAgg
}

type phaseAgg struct {
	count    int
	total    float64
	min, max float64
}

func (ps *pipeState) observe(e telemetry.Event) {
	if ps.phases == nil {
		ps.phases = map[string]*phaseAgg{}
	}
	ps.spans++
	agg := ps.phases[e.Name]
	if agg == nil {
		agg = &phaseAgg{min: e.Value, max: e.Value}
		ps.phases[e.Name] = agg
	}
	agg.count++
	agg.total += e.Value
	if e.Value < agg.min {
		agg.min = e.Value
	}
	if e.Value > agg.max {
		agg.max = e.Value
	}
}

// PhaseLatency is the latency summary of one reschedule-pipeline phase, in
// microseconds of wall time.
type PhaseLatency struct {
	// Phase is "diff", "dls", "stretch" or "validate".
	Phase string  `json:"phase"`
	Count int     `json:"count"`
	Mean  float64 `json:"mean_us"`
	Min   float64 `json:"min_us"`
	Max   float64 `json:"max_us"`
	Total float64 `json:"total_us"`
}

// PipelineStatus summarizes where reschedule wall time went. It is nil
// (omitted from JSON and the text report) when the stream carried no
// pipeline_span events, keeping pre-provenance captures unchanged.
type PipelineStatus struct {
	// Spans counts the pipeline_span events observed.
	Spans  int            `json:"spans"`
	Phases []PhaseLatency `json:"phases"`
}

// pipePhaseOrder fixes the report's phase ordering to the pipeline's own:
// diff the workload, schedule (DLS), stretch, validate. Unknown phases sort
// after, alphabetically.
var pipePhaseOrder = map[string]int{"diff": 0, "dls": 1, "stretch": 2, "validate": 3}

func (ps *pipeState) snapshot() *PipelineStatus {
	if ps.spans == 0 {
		return nil
	}
	st := &PipelineStatus{Spans: ps.spans}
	for name, agg := range ps.phases {
		st.Phases = append(st.Phases, PhaseLatency{
			Phase: name, Count: agg.count,
			Mean: agg.total / float64(agg.count),
			Min:  agg.min, Max: agg.max, Total: agg.total,
		})
	}
	sort.Slice(st.Phases, func(a, b int) bool {
		pa, oka := pipePhaseOrder[st.Phases[a].Phase]
		pb, okb := pipePhaseOrder[st.Phases[b].Phase]
		switch {
		case oka && okb:
			return pa < pb
		case oka != okb:
			return oka
		default:
			return st.Phases[a].Phase < st.Phases[b].Phase
		}
	})
	return st
}
