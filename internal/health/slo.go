package health

import (
	"fmt"

	"ctgdvfs/internal/stats"
	"ctgdvfs/internal/telemetry"
)

// sloState is the SLO tracker: per KindInstanceFinish it folds lateness,
// makespan and energy into rolling windows (quantiles are read back through
// stats.SamplePercentiles, i.e. the same fixed-bucket stats.Histogram the
// metrics registry uses), maintains the deadline-miss budget burn rate and
// miss-streak detector, and mirrors the recovery layer's circuit-breaker
// and fallback activity from the decision events.
type sloState struct {
	instances int
	misses    int
	overruns  int

	curStreak, maxStreak int

	fallbacks, fallbacksSaved int
	guardLevel, maxGuardLevel int
	reschedules, cacheHits    int

	totalEnergy   float64
	totalLateness float64

	lateness, makespan, energy rollWindow
	driftTrace                 rollPairs // (instance, manager MaxDrift) trajectory

	// failing latches per SLO verdict name: an "slo" alert fires on the
	// pass→fail transition only.
	failing map[string]bool
}

func (s *sloState) init(opts *Options) {
	s.lateness.init(opts.WindowSize)
	s.makespan.init(opts.WindowSize)
	s.energy.init(opts.WindowSize)
	s.driftTrace.init(opts.WindowSize)
	s.failing = make(map[string]bool)
}

// rollWindow is a fixed-capacity ring of the most recent observations.
type rollWindow struct {
	buf   []float64
	pos   int
	full  bool
	total int
}

func (w *rollWindow) init(capacity int) { w.buf = make([]float64, 0, capacity) }

func (w *rollWindow) push(x float64) {
	w.total++
	if len(w.buf) < cap(w.buf) {
		w.buf = append(w.buf, x)
		return
	}
	w.full = true
	w.buf[w.pos] = x
	w.pos = (w.pos + 1) % len(w.buf)
}

// values returns the window contents (arrival order not preserved; quantile
// summaries are order-independent).
func (w *rollWindow) values() []float64 { return w.buf }

// rollPairs is a fixed-capacity ring of (instance, value) pairs kept in
// arrival order — the drift trajectory the report samples.
type rollPairs struct {
	inst []int
	val  []float64
}

func (p *rollPairs) init(capacity int) {
	p.inst = make([]int, 0, capacity)
	p.val = make([]float64, 0, capacity)
}

func (p *rollPairs) push(instance int, v float64) {
	if len(p.inst) == cap(p.inst) {
		copy(p.inst, p.inst[1:])
		copy(p.val, p.val[1:])
		p.inst[len(p.inst)-1] = instance
		p.val[len(p.val)-1] = v
		return
	}
	p.inst = append(p.inst, instance)
	p.val = append(p.val, v)
}

func (s *sloState) observeFinish(a *AnalyzerRecorder, e telemetry.Event) {
	s.instances++
	s.totalEnergy += e.Energy
	s.totalLateness += e.Lateness
	s.lateness.push(e.Lateness)
	s.makespan.push(e.Makespan)
	s.energy.push(e.Energy)
	s.driftTrace.push(e.Instance, e.Drift)
	if e.Met {
		s.curStreak = 0
	} else {
		s.misses++
		s.curStreak++
		if s.curStreak > s.maxStreak {
			s.maxStreak = s.curStreak
		}
		if s.curStreak == a.opts.MissStreak {
			a.raise(Alert{
				Type:      "miss_streak",
				Instance:  e.Instance,
				Fork:      -1,
				Value:     float64(s.curStreak),
				Threshold: float64(a.opts.MissStreak),
				Message: fmt.Sprintf("deadline miss streak: %d consecutive instances missed",
					s.curStreak),
			})
		}
	}
	a.hm.missStreak.Set(float64(s.curStreak))
	a.hm.maxMissStreak.SetMax(float64(s.maxStreak))
	a.hm.budgetBurn.Set(s.budgetBurn(&a.opts))

	// Online verdict evaluation: alert on every pass→fail transition past
	// the warm-up.
	if s.instances >= a.opts.SLOWarmup {
		for _, v := range s.verdicts(&a.opts) {
			was := s.failing[v.Name]
			s.failing[v.Name] = !v.Pass
			if !v.Pass && !was {
				a.hm.sloBreaches.Inc()
				a.raise(Alert{
					Type:      "slo",
					Instance:  e.Instance,
					Fork:      -1,
					Name:      v.Name,
					Value:     v.Actual,
					Threshold: v.Bound,
					Message: fmt.Sprintf("SLO %s breached: %.4g > %.4g",
						v.Name, v.Actual, v.Bound),
				})
			}
		}
	}
}

func (s *sloState) observeReschedule(e telemetry.Event) {
	s.reschedules++
	if e.CacheHit {
		s.cacheHits++
	}
}

func (s *sloState) observeFallback(e telemetry.Event) {
	s.fallbacks++
	if e.Met {
		s.fallbacksSaved++
	}
}

func (s *sloState) observeGuard(e telemetry.Event) {
	s.guardLevel = e.Level
	if e.Level > s.maxGuardLevel {
		s.maxGuardLevel = e.Level
	}
}

// missRate is the run-to-date deadline-miss fraction.
func (s *sloState) missRate() float64 {
	if s.instances == 0 {
		return 0
	}
	return float64(s.misses) / float64(s.instances)
}

// budgetBurn is the fraction of the miss budget consumed: actual miss rate
// over allowed miss rate (1.0 = budget exactly exhausted; disabled or
// instance-free runs report 0).
func (s *sloState) budgetBurn(opts *Options) float64 {
	if opts.SLO.MaxMissRate <= 0 || s.instances == 0 {
		return 0
	}
	return s.missRate() / opts.SLO.MaxMissRate
}

// verdicts scores the configured objectives against the current state.
func (s *sloState) verdicts(opts *Options) []Verdict {
	var out []Verdict
	if opts.SLO.MaxMissRate > 0 {
		out = append(out, Verdict{
			Name: "miss_rate", Actual: s.missRate(), Bound: opts.SLO.MaxMissRate,
			Pass: s.missRate() <= opts.SLO.MaxMissRate,
		})
	}
	if opts.SLO.MaxLatenessP95 > 0 {
		p := stats.SamplePercentiles(s.lateness.values())
		out = append(out, Verdict{
			Name: "lateness_p95", Actual: p.P95, Bound: opts.SLO.MaxLatenessP95,
			Pass: p.P95 <= opts.SLO.MaxLatenessP95,
		})
	}
	if opts.SLO.MaxMakespanP95 > 0 {
		p := stats.SamplePercentiles(s.makespan.values())
		out = append(out, Verdict{
			Name: "makespan_p95", Actual: p.P95, Bound: opts.SLO.MaxMakespanP95,
			Pass: p.P95 <= opts.SLO.MaxMakespanP95,
		})
	}
	if opts.SLO.MaxAvgEnergy > 0 && s.instances > 0 {
		avg := s.totalEnergy / float64(s.instances)
		out = append(out, Verdict{
			Name: "avg_energy", Actual: avg, Bound: opts.SLO.MaxAvgEnergy,
			Pass: avg <= opts.SLO.MaxAvgEnergy,
		})
	}
	return out
}

// Verdict is one scored SLO objective.
type Verdict struct {
	Name    string  `json:"name"`
	Actual  float64 `json:"actual"`
	Bound   float64 `json:"bound"`
	Pass    bool    `json:"pass"`
	Pending bool    `json:"pending,omitempty"`
}

// Quantiles is a rolling-window distribution summary (quantiles through
// stats.SamplePercentiles over the window).
type Quantiles struct {
	Count int     `json:"count"` // total observations (window keeps the last WindowSize)
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

func (w *rollWindow) quantiles() Quantiles {
	q := Quantiles{Count: w.total}
	vs := w.values()
	if len(vs) == 0 {
		return q
	}
	p := stats.SamplePercentiles(vs)
	q.P50, q.P95, q.P99 = p.P50, p.P95, p.P99
	for _, v := range vs {
		if v > q.Max {
			q.Max = v
		}
	}
	return q
}

// DriftPoint is one sampled point of the drift trajectory.
type DriftPoint struct {
	Instance int     `json:"instance"`
	Drift    float64 `json:"drift"`
}

// SLOStatus is the exported SLO-tracker summary.
type SLOStatus struct {
	Instances int     `json:"instances"`
	Misses    int     `json:"misses"`
	MissRate  float64 `json:"miss_rate"`
	Overruns  int     `json:"overruns"`

	CurStreak int `json:"cur_streak"`
	MaxStreak int `json:"max_streak"`

	Fallbacks      int `json:"fallbacks"`
	FallbacksSaved int `json:"fallbacks_saved"`
	GuardLevel     int `json:"guard_level"`
	MaxGuardLevel  int `json:"max_guard_level"`
	Reschedules    int `json:"reschedules"`
	CacheHits      int `json:"cache_hits"`

	AvgEnergy     float64 `json:"avg_energy"`
	TotalLateness float64 `json:"total_lateness"`

	Lateness Quantiles `json:"lateness"`
	Makespan Quantiles `json:"makespan"`
	Energy   Quantiles `json:"energy"`

	BudgetBurn float64   `json:"budget_burn"`
	Verdicts   []Verdict `json:"verdicts"`

	// DriftTrajectory samples the manager-reported MaxDrift over the rolling
	// window: up to 16 evenly spaced (instance, drift) points.
	DriftTrajectory []DriftPoint `json:"drift_trajectory,omitempty"`
}

func (s *sloState) snapshot(opts *Options) SLOStatus {
	st := SLOStatus{
		Instances: s.instances,
		Misses:    s.misses,
		MissRate:  s.missRate(),
		Overruns:  s.overruns,

		CurStreak: s.curStreak,
		MaxStreak: s.maxStreak,

		Fallbacks:      s.fallbacks,
		FallbacksSaved: s.fallbacksSaved,
		GuardLevel:     s.guardLevel,
		MaxGuardLevel:  s.maxGuardLevel,
		Reschedules:    s.reschedules,
		CacheHits:      s.cacheHits,

		TotalLateness: s.totalLateness,

		Lateness: s.lateness.quantiles(),
		Makespan: s.makespan.quantiles(),
		Energy:   s.energy.quantiles(),

		BudgetBurn: s.budgetBurn(opts),
	}
	if s.instances > 0 {
		st.AvgEnergy = s.totalEnergy / float64(s.instances)
	}
	st.Verdicts = s.verdicts(opts)
	if s.instances < opts.SLOWarmup {
		for i := range st.Verdicts {
			st.Verdicts[i].Pending = true
		}
	}
	// Sample the drift trajectory: at most 16 evenly spaced points of the
	// retained window, oldest to newest.
	n := len(s.driftTrace.inst)
	if n > 0 {
		step := 1
		if n > 16 {
			step = (n + 15) / 16
		}
		for i := 0; i < n; i += step {
			st.DriftTrajectory = append(st.DriftTrajectory,
				DriftPoint{Instance: s.driftTrace.inst[i], Drift: s.driftTrace.val[i]})
		}
		if (n-1)%step != 0 {
			st.DriftTrajectory = append(st.DriftTrajectory,
				DriftPoint{Instance: s.driftTrace.inst[n-1], Drift: s.driftTrace.val[n-1]})
		}
	}
	return st
}
