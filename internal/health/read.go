package health

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"ctgdvfs/internal/telemetry"
)

// TruncatedTailError reports a JSONL capture whose final line failed to
// parse — the signature of a recorder killed mid-write (crash, full disk,
// SIGKILL during a flight-recorder dump). LoadEvents returns it alongside
// the successfully parsed prefix: callers should treat it as a warning, not
// a failure, because everything before the torn line is intact.
type TruncatedTailError struct {
	// Line is the 1-based line number of the unparseable trailing line.
	Line int
	// Err is the underlying JSON decode error.
	Err error
}

func (e *TruncatedTailError) Error() string {
	return fmt.Sprintf("truncated JSONL tail: line %d unparseable (%v); analyzing the %d-line prefix",
		e.Line, e.Err, e.Line-1)
}

func (e *TruncatedTailError) Unwrap() error { return e.Err }

// LoadEvents parses a recorded telemetry capture — either a JSONL event
// stream (telemetry.JSONLRecorder output) or a Chrome trace-event file
// (telemetry.ChromeTrace output) — into the flat event stream the analyzers
// consume. The format is auto-detected. For Chrome traces, run selects the
// process (run name) to analyze; empty run is allowed when the trace holds
// exactly one process. The returned string names the format: "jsonl" or
// "chrome".
//
// A Chrome trace is a lossy projection of the original stream (instance
// summaries and estimator events are rendered as counters or not at all), so
// the converted stream supports hotspot and decision-timeline analysis but
// carries no estimate or per-instance SLO data — Analyze on it reports
// drift and SLO sections as "(no data)".
//
// A JSONL capture whose final line is torn (a recorder killed mid-write)
// parses to its intact prefix with a *TruncatedTailError — the events are
// still returned and usable; treat the error as a warning. A parse failure
// anywhere before the last line is a hard error.
func LoadEvents(data []byte, run string) ([]telemetry.Event, string, error) {
	var cf chromeInFile
	if err := json.Unmarshal(data, &cf); err == nil && len(cf.TraceEvents) > 0 {
		evs, err := convertChrome(cf.TraceEvents, run)
		return evs, "chrome", err
	}
	evs, err := readJSONLLines(data)
	if err != nil {
		var tail *TruncatedTailError
		if errors.As(err, &tail) {
			return evs, "jsonl", err
		}
		return nil, "", fmt.Errorf("parse as JSONL: %w (and not a Chrome trace)", err)
	}
	return evs, "jsonl", nil
}

// readJSONLLines parses a JSONL event stream line by line. Unlike
// telemetry.ReadJSONL's streaming decoder it knows where line boundaries
// are, so it can distinguish a torn final line (tolerated, reported as
// *TruncatedTailError) from corruption mid-stream (fatal).
func readJSONLLines(data []byte) ([]telemetry.Event, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var events []telemetry.Event
	var pendingErr error
	pendingLine := 0
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if pendingErr != nil {
			// The failed line was not the last non-empty one: corruption
			// mid-stream, not a torn tail.
			return nil, fmt.Errorf("line %d: %w", pendingLine, pendingErr)
		}
		var e telemetry.Event
		if err := json.Unmarshal(raw, &e); err != nil {
			pendingErr, pendingLine = err, line
			continue
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if pendingErr != nil {
		if len(events) == 0 {
			return nil, fmt.Errorf("line %d: %w", pendingLine, pendingErr)
		}
		return events, &TruncatedTailError{Line: pendingLine, Err: pendingErr}
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("no events in stream")
	}
	return events, nil
}

// chromeInFile mirrors the exporter's top-level object for ingestion.
type chromeInFile struct {
	TraceEvents []chromeInEvent `json:"traceEvents"`
}

type chromeInEvent struct {
	Name string        `json:"name"`
	Cat  string        `json:"cat"`
	Ph   string        `json:"ph"`
	Ts   float64       `json:"ts"`
	Dur  float64       `json:"dur"`
	Pid  int           `json:"pid"`
	Tid  int           `json:"tid"`
	Args *chromeInArgs `json:"args"`
}

type chromeInArgs struct {
	Label    string   `json:"name"`
	Task     int      `json:"task"`
	Scenario int      `json:"scenario"`
	Speed    float64  `json:"speed"`
	Overrun  float64  `json:"overrun"`
	Energy   *float64 `json:"energy"`
	Makespan float64  `json:"makespan"`
	Met      *bool    `json:"met"`
	Reason   string   `json:"reason"`
	CacheHit *bool    `json:"cache_hit"`
	Calls    int      `json:"calls"`
	Level    *int     `json:"level"`
	Drift    *float64 `json:"drift"`
}

// convertChrome rebuilds a flat event stream from one process of a Chrome
// trace. Instance ids are reconstructed from the per-instance "drift"
// counter boundaries the exporter writes at each instance end.
func convertChrome(evs []chromeInEvent, run string) ([]telemetry.Event, error) {
	// Processes, in order of appearance.
	procName := make(map[int]string)
	var pids []int
	for _, e := range evs {
		if e.Ph == "M" && e.Name == "process_name" && e.Args != nil {
			if _, ok := procName[e.Pid]; !ok {
				pids = append(pids, e.Pid)
			}
			procName[e.Pid] = e.Args.Label
		}
	}
	pid, found := -1, false
	switch {
	case run != "":
		for _, p := range pids {
			if procName[p] == run {
				pid, found = p, true
				break
			}
		}
		if !found {
			names := make([]string, len(pids))
			for i, p := range pids {
				names[i] = procName[p]
			}
			return nil, fmt.Errorf("run %q not in trace (runs: %s)", run, strings.Join(names, ", "))
		}
	case len(pids) == 1:
		pid = pids[0]
	case len(pids) == 0:
		return nil, fmt.Errorf("trace has no process_name metadata")
	default:
		names := make([]string, len(pids))
		for i, p := range pids {
			names[i] = procName[p]
		}
		return nil, fmt.Errorf("trace holds %d runs (%s); pick one with -run", len(pids), strings.Join(names, ", "))
	}

	// Thread rows of the chosen process: PE rows and link rows.
	peRow := make(map[int]int)      // tid -> PE id
	linkRow := make(map[int][2]int) // tid -> (from, to)
	var boundaries []float64        // instance-end timestamps ("drift" counters)
	for _, e := range evs {
		if e.Pid != pid {
			continue
		}
		switch {
		case e.Ph == "M" && e.Name == "thread_name" && e.Args != nil:
			var a, b int
			if n, _ := fmt.Sscanf(e.Args.Label, "PE %d", &a); n == 1 {
				peRow[e.Tid] = a
			} else if n, _ := fmt.Sscanf(e.Args.Label, "link %d→%d", &a, &b); n == 2 {
				linkRow[e.Tid] = [2]int{a, b}
			}
		case e.Ph == "C" && e.Name == "drift":
			boundaries = append(boundaries, e.Ts)
		}
	}
	sort.Float64s(boundaries)
	instFor := func(ts float64) int {
		if len(boundaries) == 0 {
			return 0
		}
		i := sort.SearchFloat64s(boundaries, ts-1e-9)
		if i >= len(boundaries) {
			i = len(boundaries) - 1
		}
		return i
	}

	var out []telemetry.Event
	for _, e := range evs {
		if e.Pid != pid || e.Ph == "M" || e.Cat == "flow" {
			continue
		}
		switch e.Ph {
		case "X":
			end := e.Ts + e.Dur
			inst := instFor(end)
			phase := ""
			if e.Cat == "fallback" {
				phase = telemetry.PhaseFallback
			}
			if link, ok := linkRow[e.Tid]; ok {
				ev := telemetry.Event{
					Kind: telemetry.KindCommSlice, Instance: inst,
					PE: link[0], PE2: link[1],
					Start: e.Ts, End: end, Phase: phase,
				}
				fmt.Sscanf(e.Name, "%d→%d", &ev.Task, &ev.Task2)
				out = append(out, ev)
				continue
			}
			ev := telemetry.Event{
				Kind: telemetry.KindTaskSlice, Instance: inst,
				Name: e.Name, PE: peRow[e.Tid],
				Start: e.Ts, End: end, Phase: phase,
			}
			if e.Args != nil {
				ev.Task = e.Args.Task
				ev.Scenario = e.Args.Scenario
				ev.Speed = e.Args.Speed
				ev.Factor = e.Args.Overrun
				if e.Args.Energy != nil {
					ev.Energy = *e.Args.Energy
				}
			}
			out = append(out, ev)
		case "i":
			inst := instFor(e.Ts)
			switch {
			case strings.HasPrefix(e.Name, "reschedule"):
				ev := telemetry.Event{Kind: telemetry.KindReschedule, Instance: inst}
				if e.Args != nil {
					ev.Reason = e.Args.Reason
					if e.Args.CacheHit != nil {
						ev.CacheHit = *e.Args.CacheHit
					}
					ev.Calls = e.Args.Calls
				}
				out = append(out, ev)
			case e.Name == "fallback":
				ev := telemetry.Event{Kind: telemetry.KindFallback, Instance: inst}
				if e.Args != nil {
					ev.Makespan2 = e.Args.Makespan
					if e.Args.Met != nil {
						ev.Met = *e.Args.Met
					}
				}
				out = append(out, ev)
			case strings.HasPrefix(e.Name, "guard level"):
				ev := telemetry.Event{Kind: telemetry.KindGuardLevel, Instance: inst}
				fmt.Sscanf(e.Name, "guard level %d→%d", &ev.Level2, &ev.Level)
				out = append(out, ev)
			}
		}
	}
	return out, nil
}
