package health

import (
	"fmt"
	"sort"

	"ctgdvfs/internal/telemetry"
)

// availState tracks hardware availability from the pe_down/pe_up/link_down/
// link_up/remap event kinds the adaptive manager emits at instance
// boundaries. Each PE gets a latched alert: the first down transition raises
// it, and it re-arms only when the PE comes back up — a PE that stays down
// for a thousand instances is one alert, not a thousand.
type availState struct {
	seen      bool
	peDown    map[int]bool // currently-down PEs (latched alert armed)
	peOutages map[int]int  // total down transitions per PE
	permanent map[int]bool // PE ever reported permanently dead
	linkDowns int
	remaps    int
	restores  int
}

// PEAvailability is one PE's availability record in a snapshot.
type PEAvailability struct {
	PE int `json:"pe"`
	// Outages is the number of down transitions observed.
	Outages int `json:"outages"`
	// Down reports whether the PE is currently out of service.
	Down bool `json:"down,omitempty"`
	// Permanent reports whether any outage was a permanent death.
	Permanent bool `json:"permanent,omitempty"`
}

// AvailabilityStatus summarizes the hardware-availability history of a run.
// It is nil (omitted from JSON and the text report) when the stream carried
// no availability events at all, keeping healthy-run output unchanged.
type AvailabilityStatus struct {
	PEs []PEAvailability `json:"pes,omitempty"`
	// LinkDowns counts link outage events.
	LinkDowns int `json:"link_downs"`
	// Remaps counts degraded-mode re-mapping decisions; Restores counts
	// remaps back onto the recovered full topology.
	Remaps   int `json:"remaps"`
	Restores int `json:"restores"`
}

func (av *availState) observe(a *AnalyzerRecorder, e telemetry.Event) {
	if av.peDown == nil {
		av.peDown = map[int]bool{}
		av.peOutages = map[int]int{}
		av.permanent = map[int]bool{}
	}
	av.seen = true
	switch e.Kind {
	case telemetry.KindPEDown:
		av.peOutages[e.PE]++
		if e.Reason == "permanent" {
			av.permanent[e.PE] = true
		}
		a.note(e.Instance, "pe_down", fmt.Sprintf("PE %d (%s), %d alive", e.PE, e.Reason, e.Alive))
		if !av.peDown[e.PE] {
			av.peDown[e.PE] = true
			a.raise(Alert{
				Type:     "availability",
				Instance: e.Instance,
				Fork:     -1,
				Name:     fmt.Sprintf("pe_%d", e.PE),
				Value:    float64(e.Alive),
				Message: fmt.Sprintf("PE %d lost (%s), %d PEs remain in service",
					e.PE, e.Reason, e.Alive),
			})
		}
	case telemetry.KindPEUp:
		// Re-arm the latch: a later outage of the same PE alerts again.
		av.peDown[e.PE] = false
		a.note(e.Instance, "pe_up", fmt.Sprintf("PE %d restored, %d alive", e.PE, e.Alive))
	case telemetry.KindLinkDown:
		av.linkDowns++
		a.note(e.Instance, "link_down", fmt.Sprintf("link %d->%d", e.PE, e.PE2))
	case telemetry.KindLinkUp:
		a.note(e.Instance, "link_up", fmt.Sprintf("link %d->%d", e.PE, e.PE2))
	case telemetry.KindRemap:
		if e.Reason == "restored" {
			av.restores++
		} else {
			av.remaps++
		}
		a.note(e.Instance, "remap", fmt.Sprintf("%s, scheduling onto %d PEs", e.Reason, e.Alive))
	}
}

func (av *availState) snapshot() *AvailabilityStatus {
	if !av.seen {
		return nil
	}
	st := &AvailabilityStatus{LinkDowns: av.linkDowns, Remaps: av.remaps, Restores: av.restores}
	pes := make([]int, 0, len(av.peOutages))
	for pe := range av.peOutages {
		pes = append(pes, pe)
	}
	sort.Ints(pes)
	for _, pe := range pes {
		st.PEs = append(st.PEs, PEAvailability{
			PE:        pe,
			Outages:   av.peOutages[pe],
			Down:      av.peDown[pe],
			Permanent: av.permanent[pe],
		})
	}
	return st
}
