package health_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ctgdvfs/internal/core"
	"ctgdvfs/internal/faults"
	"ctgdvfs/internal/health"
	"ctgdvfs/internal/power"
	"ctgdvfs/internal/telemetry"
	"ctgdvfs/internal/tgff"
	"ctgdvfs/internal/trace"
)

// writeFixture encodes a captured stream as a committed JSONL fixture.
func writeFixture(t *testing.T, name string, events []telemetry.Event) {
	t.Helper()
	var buf bytes.Buffer
	jr := telemetry.NewJSONLRecorder(&buf)
	for _, e := range events {
		jr.Record(e)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join("testdata", name), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// loadFixture reads a committed JSONL fixture through the same LoadEvents
// path `ctgsched explain` uses.
func loadFixture(t *testing.T, name string) []telemetry.Event {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("missing fixture (run with -update): %v", err)
	}
	events, format, err := health.LoadEvents(data, "")
	if err != nil {
		t.Fatal(err)
	}
	if format != "jsonl" {
		t.Fatalf("fixture format %q, want jsonl", format)
	}
	return events
}

// adaptiveProvenanceEvents captures a recovery-enabled adaptive run under an
// overrun fault plan: the stream carries drift reschedules, fallback replays
// and circuit-breaker moves, all seq/cause-linked.
func adaptiveProvenanceEvents(t *testing.T) []telemetry.Event {
	t.Helper()
	cfg := tgff.Config{Seed: 65, Nodes: 18, PEs: 3, Branches: 2, Category: tgff.ForkJoin}
	g0, p, err := tgff.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.TightenDeadline(g0, p, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faults.New(faults.Spec{Seed: 42, OverrunProb: 0.25, OverrunFactor: 1.2},
		g.NumTasks(), cfg.PEs)
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.NewMemoryRecorder()
	m, err := core.New(g, p, core.Options{
		Window: 10, Threshold: 0.1,
		Faults: plan, Recovery: true, GuardBand: 0.2,
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(trace.Fluctuating(g, 7, 60, 0.45)); err != nil {
		t.Fatal(err)
	}
	return rec.Events()
}

// fleetProvenanceEvents captures a power-governed two-tenant consolidation
// run whose cap binds: budget breaches, ladder rungs and the tenant
// reschedules they force, interleaved on one seq id space.
func fleetProvenanceEvents(t *testing.T) []telemetry.Event {
	t.Helper()
	tenants := func() []core.Tenant {
		names := []string{"hi", "lo"}
		ts := make([]core.Tenant, len(names))
		for i, name := range names {
			cfg := tgff.Config{Seed: int64(100 + i), Nodes: 14, PEs: 6, Branches: 2, Category: tgff.ForkJoin}
			g, p, err := tgff.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ts[i] = core.Tenant{
				Name: name, Criticality: len(names) - i, G: g, P: p,
				Opts: core.Options{GuardBand: 0.3},
			}
		}
		return ts
	}
	vectors := func(ts []core.Tenant, n int) [][][]int {
		vecs := make([][][]int, len(ts))
		for i, tn := range ts {
			vecs[i] = trace.Fluctuating(tn.G, int64(5+i), n, 0.45)
		}
		return vecs
	}
	model := power.Model{IdlePEPower: 0.05, IdleLinkPower: 0.002}

	// Ungoverned pass measures what the cap would have seen; the governed
	// capture then runs just under the observed peak, so the governor primes
	// shallow (predictions are expectation-based) and the ladder engages at
	// runtime — a breach-caused escalation, not a priming one.
	base, err := core.NewFleet(tenants(), core.FleetOptions{
		DeadlineFactor: 1.6,
		Budget:         &power.Budget{Cap: 1, Model: model},
		Ungoverned:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := base.Run(vectors(tenants(), 40))
	if err != nil {
		t.Fatal(err)
	}
	p0 := rb.Power.MaxWindowPower

	rec := telemetry.NewMemoryRecorder()
	ts := tenants()
	for i := range ts {
		ts[i].Opts.Recorder = rec
	}
	f, err := core.NewFleet(ts, core.FleetOptions{
		DeadlineFactor: 1.6,
		Budget:         &power.Budget{Cap: 0.97 * p0, Window: 8, PrimeMargin: 0.001, Model: model},
		Recorder:       rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(vectors(ts, 40)); err != nil {
		t.Fatal(err)
	}
	return rec.Events()
}

// TestExplainGoldens is the acceptance test of `ctgsched explain`: from
// committed captured streams, the engine must reconstruct the complete
// trigger → decision → effects chain for a drift reschedule, a fallback
// activation, and a fleet degradation rung. -update regenerates the fixtures
// and goldens together (span latencies are wall-clock, so they are only
// stable inside one captured fixture).
func TestExplainGoldens(t *testing.T) {
	if *update {
		writeFixture(t, "provenance_adaptive.jsonl", adaptiveProvenanceEvents(t))
		writeFixture(t, "provenance_fleet.jsonl", fleetProvenanceEvents(t))
	}

	adaptive := loadFixture(t, "provenance_adaptive.jsonl")
	fleet := loadFixture(t, "provenance_fleet.jsonl")

	t.Run("reschedule", func(t *testing.T) {
		// Pin a drift-triggered reschedule: the chain must run
		// instance_start → window_estimate → reschedule.
		var seq uint64
		for _, e := range adaptive {
			if e.Kind == telemetry.KindReschedule && e.Reason == "drift" {
				seq = e.Seq
			}
		}
		if seq == 0 {
			t.Fatal("fixture carries no drift reschedule")
		}
		x, err := health.Explain(adaptive, health.ExplainQuery{Seq: seq, Instance: -1})
		if err != nil {
			t.Fatal(err)
		}
		assertChainKinds(t, x, telemetry.KindInstanceStart, telemetry.KindEstimate, telemetry.KindReschedule)
		checkGolden(t, "explain_reschedule.golden", x.Render())
	})

	t.Run("fallback", func(t *testing.T) {
		x, err := health.Explain(adaptive, health.ExplainQuery{Kind: "fallback", Instance: -1})
		if err != nil {
			t.Fatal(err)
		}
		assertChainKinds(t, x, telemetry.KindInstanceStart, telemetry.KindFallback)
		checkGolden(t, "explain_fallback.golden", x.Render())
	})

	t.Run("fleet-degradation", func(t *testing.T) {
		x, err := health.Explain(fleet, health.ExplainQuery{Kind: "tenant_degraded", Instance: -1})
		if err != nil {
			t.Fatal(err)
		}
		assertChainKinds(t, x, telemetry.KindBudgetExceeded, telemetry.KindTenantDegraded)
		if len(x.Effects) == 0 {
			t.Fatal("ladder rung recorded no tenant effects")
		}
		checkGolden(t, "explain_fleet.golden", x.Render())
	})

	t.Run("list", func(t *testing.T) {
		ds := health.Decisions(adaptive)
		if len(ds) == 0 {
			t.Fatal("no decisions listed")
		}
		for _, d := range ds {
			if d.Kind == telemetry.KindTaskSlice || d.Kind == telemetry.KindEstimate {
				t.Fatalf("non-decision kind %s listed", d.Kind)
			}
		}
	})
}

// assertChainKinds checks the causal chain passes through the given kinds in
// order (other links may sit between them).
func assertChainKinds(t *testing.T, x *health.Explanation, kinds ...telemetry.Kind) {
	t.Helper()
	i := 0
	for _, e := range x.Chain {
		if i < len(kinds) && e.Kind == kinds[i] {
			i++
		}
	}
	if i != len(kinds) {
		var got []string
		for _, e := range x.Chain {
			got = append(got, string(e.Kind))
		}
		t.Fatalf("chain %v missing expected subsequence %v", got, kinds)
	}
}

// TestExplainErrors covers the engine's failure modes.
func TestExplainErrors(t *testing.T) {
	unsequenced := []telemetry.Event{
		{Kind: telemetry.KindReschedule, Instance: 0, Reason: "initial"},
	}
	if _, err := health.Explain(unsequenced, health.ExplainQuery{Instance: -1}); err == nil ||
		!strings.Contains(err.Error(), "no seq ids") {
		t.Fatalf("unsequenced stream accepted: %v", err)
	}
	sequenced := []telemetry.Event{
		{Kind: telemetry.KindReschedule, Instance: 0, Reason: "initial", Seq: 1},
	}
	if _, err := health.Explain(sequenced, health.ExplainQuery{Seq: 99}); err == nil ||
		!strings.Contains(err.Error(), "no event with seq") {
		t.Fatalf("unknown seq accepted: %v", err)
	}
	if _, err := health.Explain(sequenced, health.ExplainQuery{Kind: "fallback", Instance: -1}); err == nil ||
		!strings.Contains(err.Error(), "no decision matches") {
		t.Fatalf("unmatched query accepted: %v", err)
	}
}

// TestLoadEventsTruncatedTail pins the tolerant reader: a capture whose
// final line was torn mid-write parses to its intact prefix with a typed
// warning, while mid-stream corruption stays fatal.
func TestLoadEventsTruncatedTail(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "truncated.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	events, format, err := health.LoadEvents(data, "")
	var tail *health.TruncatedTailError
	if !errors.As(err, &tail) {
		t.Fatalf("want TruncatedTailError, got %v", err)
	}
	if format != "jsonl" || len(events) != 4 {
		t.Fatalf("prefix not recovered: format %q, %d events", format, len(events))
	}
	if events[3].Kind != telemetry.KindReschedule {
		t.Fatalf("prefix corrupted: %+v", events[3])
	}
	if tail.Line != 5 {
		t.Fatalf("torn line reported as %d, want 5", tail.Line)
	}

	// The same torn line mid-stream (events after it) is corruption, not
	// truncation: hard error, no events returned.
	lines := bytes.Split(bytes.TrimRight(data, "\n"), []byte("\n"))
	midStream := bytes.Join([][]byte{lines[0], lines[4], lines[1]}, []byte("\n"))
	if evs, _, err := health.LoadEvents(midStream, ""); err == nil || errors.As(err, &tail) || evs != nil {
		t.Fatalf("mid-stream corruption tolerated: %d events, %v", len(evs), err)
	}
}

// TestPipelineSection pins the span accumulator's arithmetic and ordering.
func TestPipelineSection(t *testing.T) {
	span := func(phase string, us float64) telemetry.Event {
		return telemetry.Event{Kind: telemetry.KindSpan, Name: phase, Value: us}
	}
	s := health.Analyze([]telemetry.Event{
		span("stretch", 30), span("dls", 100), span("dls", 300), span("diff", 7),
	}, health.Options{})
	if s.Pipeline == nil {
		t.Fatal("pipeline section missing")
	}
	if s.Pipeline.Spans != 4 || len(s.Pipeline.Phases) != 3 {
		t.Fatalf("pipeline shape wrong: %+v", s.Pipeline)
	}
	// Pipeline order, not alphabetical: diff before dls before stretch.
	if s.Pipeline.Phases[0].Phase != "diff" || s.Pipeline.Phases[1].Phase != "dls" ||
		s.Pipeline.Phases[2].Phase != "stretch" {
		t.Fatalf("phase order wrong: %+v", s.Pipeline.Phases)
	}
	dls := s.Pipeline.Phases[1]
	if dls.Count != 2 || dls.Mean != 200 || dls.Min != 100 || dls.Max != 300 || dls.Total != 400 {
		t.Fatalf("dls aggregation wrong: %+v", dls)
	}
	// A spanless stream keeps the section (and its report block) absent.
	s2 := health.Analyze([]telemetry.Event{
		{Kind: telemetry.KindInstanceFinish, Met: true, Makespan: 10},
	}, health.Options{})
	if s2.Pipeline != nil {
		t.Fatal("pipeline section present without spans")
	}
	if strings.Contains(s2.Report(), "pipeline") {
		t.Fatal("report renders a pipeline block without spans")
	}
}
