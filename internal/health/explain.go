package health

import (
	"fmt"
	"strings"

	"ctgdvfs/internal/telemetry"
)

// ExplainQuery selects the decision an Explanation reconstructs. Seq pins an
// exact event; otherwise the query filters (kind, instance, tenant compose
// conjunctively) and the LAST matching decision in stream order is explained
// — "why did instance 412 reschedule" is a question about what happened most
// recently.
type ExplainQuery struct {
	// Seq selects the event with this exact seq id (0 = unset).
	Seq uint64
	// Instance restricts to decisions of one instance / fleet round
	// (negative = any).
	Instance int
	// Kind restricts to one event kind (e.g. "reschedule", "fallback",
	// "tenant_degraded"); empty matches any decision kind.
	Kind string
	// Tenant restricts to fleet events naming this tenant.
	Tenant string
}

// Explanation is one reconstructed decision provenance: the causal chain
// that led to the decision (root first, Cause links walked upward) and the
// decision's downstream effects (every event that names it — directly or
// transitively — as its Cause).
type Explanation struct {
	// Decision is the explained event.
	Decision telemetry.Event
	// Chain is the causal chain root-first; its last element is Decision.
	Chain []telemetry.Event
	// Effects are Decision's descendants in the cause graph, preorder.
	Effects []ExplainEffect
	// Pipeline holds the span and stretch-summary events sharing Decision's
	// own cause: the pipeline run the decision belongs to. (Those events
	// chain to the trigger, as siblings of the decision, so they are not in
	// Effects.)
	Pipeline []telemetry.Event
}

// ExplainEffect is one downstream event of an explained decision; Depth 1 is
// a direct effect, deeper levels chained through intermediate events.
type ExplainEffect struct {
	Event telemetry.Event
	Depth int
}

// decisionKinds are the event kinds `ctgsched explain -list` enumerates and
// an unconstrained query may select: the runtime's actual decisions and the
// external triggers (hardware loss, budget breach) that force them.
var decisionKinds = map[telemetry.Kind]bool{
	telemetry.KindReschedule:     true,
	telemetry.KindFallback:       true,
	telemetry.KindGuardLevel:     true,
	telemetry.KindRemap:          true,
	telemetry.KindPEDown:         true,
	telemetry.KindPEUp:           true,
	telemetry.KindBudgetExceeded: true,
	telemetry.KindPERevoked:      true,
	telemetry.KindTenantDegraded: true,
	telemetry.KindTenantRestored: true,
	telemetry.KindAlertFiring:    true,
	telemetry.KindAlertResolved:  true,
	telemetry.KindTenantPanic:    true,
	telemetry.KindTenantRestart:  true,
	telemetry.KindCheckpoint:     true,
	telemetry.KindRestore:        true,
}

// Describe renders one event as the one-line description Explain's output
// uses — for decision listings (`ctgsched explain -list`).
func Describe(e telemetry.Event) string { return describeEvent(e) }

// Decisions returns the stream's explainable decisions in order — the menu
// behind `ctgsched explain -list`.
func Decisions(events []telemetry.Event) []telemetry.Event {
	var out []telemetry.Event
	for _, e := range events {
		if decisionKinds[e.Kind] {
			out = append(out, e)
		}
	}
	return out
}

func (q ExplainQuery) matches(e telemetry.Event) bool {
	if q.Kind != "" {
		if string(e.Kind) != q.Kind {
			return false
		}
	} else if !decisionKinds[e.Kind] {
		return false
	}
	if q.Instance >= 0 && e.Instance != q.Instance {
		return false
	}
	if q.Tenant != "" && e.Name != q.Tenant {
		return false
	}
	return true
}

// Explain reconstructs the causal provenance of one decision in a recorded
// event stream. The stream must carry seq ids (captured by a sequencing
// producer); pre-provenance captures are rejected with an error.
func Explain(events []telemetry.Event, q ExplainQuery) (*Explanation, error) {
	bySeq := make(map[uint64]telemetry.Event, len(events))
	children := make(map[uint64][]int)
	sequenced := false
	for i, e := range events {
		if e.Seq != 0 {
			sequenced = true
			bySeq[e.Seq] = e
		}
		if e.Cause != 0 {
			children[e.Cause] = append(children[e.Cause], i)
		}
	}
	if !sequenced {
		return nil, fmt.Errorf("stream carries no seq ids — captured before provenance was recorded?")
	}

	var decision telemetry.Event
	found := false
	if q.Seq != 0 {
		decision, found = bySeq[q.Seq]
		if !found {
			return nil, fmt.Errorf("no event with seq %d in stream", q.Seq)
		}
	} else {
		for _, e := range events {
			if q.matches(e) {
				decision, found = e, true
			}
		}
		if !found {
			return nil, fmt.Errorf("no decision matches the query (kind %q, instance %d, tenant %q) — try -list",
				q.Kind, q.Instance, q.Tenant)
		}
	}

	x := &Explanation{Decision: decision}
	// Walk the Cause links upward; the visited set guards against a
	// corrupted stream with a cause cycle.
	visited := map[uint64]bool{}
	for e, ok := decision, true; ok; {
		x.Chain = append(x.Chain, e)
		if e.Cause == 0 || visited[e.Cause] {
			break
		}
		visited[e.Cause] = true
		e, ok = bySeq[e.Cause]
	}
	for i, j := 0, len(x.Chain)-1; i < j; i, j = i+1, j-1 {
		x.Chain[i], x.Chain[j] = x.Chain[j], x.Chain[i]
	}

	// Collect descendants preorder (effects of effects stay grouped under
	// the effect that caused them).
	var descend func(seq uint64, depth int)
	seen := map[uint64]bool{decision.Seq: true}
	descend = func(seq uint64, depth int) {
		for _, i := range children[seq] {
			e := events[i]
			if e.Seq != 0 && seen[e.Seq] {
				continue
			}
			if e.Seq != 0 {
				seen[e.Seq] = true
			}
			x.Effects = append(x.Effects, ExplainEffect{Event: e, Depth: depth})
			if e.Seq != 0 {
				descend(e.Seq, depth+1)
			}
		}
	}
	descend(decision.Seq, 1)
	if decision.Cause != 0 {
		for _, e := range events {
			if e.Cause == decision.Cause && e.Seq != decision.Seq &&
				(e.Kind == telemetry.KindSpan || e.Kind == telemetry.KindStretch) {
				x.Pipeline = append(x.Pipeline, e)
			}
		}
	}
	return x, nil
}

// maxRenderedEffects bounds the rendered effect list; an instance_start's
// descendants include every slice of the instance's replay.
const maxRenderedEffects = 48

// Render formats the explanation as the deterministic text `ctgsched
// explain` prints: the decision, the causal chain root-first, and the
// decision's downstream effects indented by causal depth.
func (x *Explanation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "decision [seq %d] at instance %d: %s\n",
		x.Decision.Seq, x.Decision.Instance, describeEvent(x.Decision))
	b.WriteString("\nwhy (causal chain, root first):\n")
	for _, e := range x.Chain {
		fmt.Fprintf(&b, "  [seq %4d] %-15s %s\n", e.Seq, e.Kind, describeEvent(e))
	}
	if len(x.Pipeline) > 0 {
		b.WriteString("\npipeline run (same trigger):\n")
		for _, e := range x.Pipeline {
			fmt.Fprintf(&b, "  [seq %4d] %-15s %s\n", e.Seq, e.Kind, describeEvent(e))
		}
	}
	b.WriteString("\neffects:\n")
	if len(x.Effects) == 0 {
		b.WriteString("  (none recorded)\n")
		return b.String()
	}
	for i, ef := range x.Effects {
		if i == maxRenderedEffects {
			fmt.Fprintf(&b, "  ... %d more\n", len(x.Effects)-i)
			break
		}
		fmt.Fprintf(&b, "  %s[seq %4d] %-15s %s\n",
			strings.Repeat("  ", ef.Depth-1), ef.Event.Seq, ef.Event.Kind, describeEvent(ef.Event))
	}
	return b.String()
}

// describeEvent renders one event as a human-readable clause, the vocabulary
// shared by the chain and effects sections.
func describeEvent(e telemetry.Event) string {
	switch e.Kind {
	case telemetry.KindInstanceStart:
		return fmt.Sprintf("instance %d began (scenario %d)", e.Instance, e.Scenario)
	case telemetry.KindInstanceFinish:
		verdict := "met deadline"
		if !e.Met {
			verdict = fmt.Sprintf("MISSED deadline (lateness %.4g)", e.Lateness)
		}
		return fmt.Sprintf("instance %d finished: %s, makespan %.4g, energy %.4g",
			e.Instance, verdict, e.Makespan, e.Energy)
	case telemetry.KindEstimate:
		return fmt.Sprintf("fork %d window estimate %s after outcome %d (drift %.3f)",
			e.Fork, probsString(e.Probs), e.Outcome, e.Drift)
	case telemetry.KindReschedule:
		how := "computed fresh"
		switch {
		case e.CacheHit:
			how = "served from cache"
		case e.Warm:
			how = "warm-started from the incumbent"
		}
		s := fmt.Sprintf("reschedule (%s): %s, call %d", e.Reason, how, e.Calls)
		if e.Threshold > 0 {
			s += fmt.Sprintf(", drift threshold %.4g", e.Threshold)
		}
		return s
	case telemetry.KindStretch:
		return fmt.Sprintf("stretched %d tasks: slack found %.4g, used %.4g, expected energy %.4g",
			e.Tasks, e.SlackFound, e.SlackUsed, e.Energy)
	case telemetry.KindSpan:
		return fmt.Sprintf("pipeline phase %s took %.1fus", e.Name, e.Value)
	case telemetry.KindOverrun:
		return fmt.Sprintf("task %d on PE %d overran ×%.3g", e.Task, e.PE, e.Factor)
	case telemetry.KindFallback:
		verdict := "missed again"
		if e.Met {
			verdict = "met the deadline"
		}
		return fmt.Sprintf("worst-case fallback replay %s (fallback makespan %.4g, failed primary %.4g)",
			verdict, e.Makespan, e.Makespan2)
	case telemetry.KindGuardLevel:
		s := fmt.Sprintf("circuit breaker %s", levelMove(e.Level2, e.Level))
		if e.Threshold > 0 {
			s += fmt.Sprintf(" (miss-rate bound %.4g)", e.Threshold)
		}
		return s
	case telemetry.KindHealthAlert:
		return fmt.Sprintf("health alert %s/%s: %.4g vs bound %.4g", e.Reason, e.Name, e.Value, e.Threshold)
	case telemetry.KindPEDown:
		return fmt.Sprintf("PE %d went down (%s), %d PEs alive", e.PE, e.Reason, e.Alive)
	case telemetry.KindPEUp:
		return fmt.Sprintf("PE %d repaired, %d PEs alive", e.PE, e.Alive)
	case telemetry.KindLinkDown:
		return fmt.Sprintf("link %d→%d went down", e.PE, e.PE2)
	case telemetry.KindLinkUp:
		return fmt.Sprintf("link %d→%d repaired", e.PE, e.PE2)
	case telemetry.KindRemap:
		return fmt.Sprintf("re-mapped (%s) onto %d PEs", e.Reason, e.Alive)
	case telemetry.KindBudgetExceeded:
		return fmt.Sprintf("chip power window mean %.4g exceeded cap %.4g (ladder level %d)",
			e.Value, e.Threshold, e.Level)
	case telemetry.KindPERevoked:
		return fmt.Sprintf("PE %d revoked from tenant %q (ladder level %d, %d PEs held)",
			e.PE, e.Name, e.Level, e.Alive)
	case telemetry.KindTenantDegraded:
		switch e.Reason {
		case "guard":
			return fmt.Sprintf("guard bands scaled ×%.2g fleet-wide (ladder level %d)", e.Value, e.Level)
		case "shed":
			return fmt.Sprintf("tenant %q shed (ladder level %d)", e.Name, e.Level)
		default:
			return fmt.Sprintf("tenant %q degraded: %s (ladder level %d)", e.Name, e.Reason, e.Level)
		}
	case telemetry.KindTenantRestored:
		switch e.Reason {
		case "guard":
			return fmt.Sprintf("guard bands restored to ×%.2g fleet-wide (ladder level %d)", e.Value, e.Level)
		case "shed":
			return fmt.Sprintf("tenant %q restored to service (ladder level %d)", e.Name, e.Level)
		case "revoke":
			return fmt.Sprintf("PE %d returned to tenant %q (ladder level %d, %d PEs held)",
				e.PE, e.Name, e.Level, e.Alive)
		default:
			return fmt.Sprintf("tenant %q restored: %s (ladder level %d)", e.Name, e.Reason, e.Level)
		}
	case telemetry.KindTenantPanic:
		return fmt.Sprintf("tenant %q worker panicked at instance %d (contained): %s (consecutive panic %d)",
			e.Name, e.Instance, e.Reason, e.Level)
	case telemetry.KindTenantRestart:
		how := e.Reason
		switch e.Reason {
		case "panic_backoff":
			how = fmt.Sprintf("after a contained panic, breaker backoff %.4gms", e.Value)
		case "cancel_rebuild":
			how = "after a deadline-cancelled step"
		}
		return fmt.Sprintf("tenant %q state rebuilt to instance %d %s", e.Name, e.Instance, how)
	case telemetry.KindCheckpoint:
		return fmt.Sprintf("tenant %q checkpointed at instance %d (call %d, digest %s)",
			e.Name, e.Instance, e.Calls, e.Key)
	case telemetry.KindRestore:
		from := "from its latest snapshot"
		if e.Reason == "fallback" {
			from = "from the previous snapshot generation (primary torn or corrupt)"
		}
		return fmt.Sprintf("tenant %q restored to instance %d %s (digest %s verified)",
			e.Name, e.Instance, from, e.Key)
	case telemetry.KindAlertFiring:
		return fmt.Sprintf("alert %q firing: %s = %.4g crossed %.4g (held %d samples)",
			e.Name, e.Reason, e.Value, e.Threshold, e.Level)
	case telemetry.KindAlertResolved:
		return fmt.Sprintf("alert %q resolved: %s = %.4g back in bounds", e.Name, e.Reason, e.Value)
	case telemetry.KindTaskSlice:
		name := e.Name
		if name == "" {
			name = fmt.Sprintf("task %d", e.Task)
		}
		return fmt.Sprintf("%s ran on PE %d [%.4g, %.4g] at speed %.3g",
			name, e.PE, e.Start, e.End, e.Speed)
	case telemetry.KindCommSlice:
		return fmt.Sprintf("edge %d (task %d→%d) over link %d→%d [%.4g, %.4g]",
			e.Edge, e.Task, e.Task2, e.PE, e.PE2, e.Start, e.End)
	default:
		return string(e.Kind)
	}
}
