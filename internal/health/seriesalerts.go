package health

import (
	"fmt"
	"sort"

	"ctgdvfs/internal/telemetry"
)

// seriesAlertState tracks the rule-based alerting engine's alert_firing /
// alert_resolved events (internal/series rules evaluated on the sampled
// time-series rings). Unlike the analyzer's own drift/SLO/power alerts these
// originate outside the health layer, so the state only mirrors them: which
// rules exist, which are firing now, and how often each fired.
type seriesAlertState struct {
	seen     bool
	firings  int
	resolved int
	rules    map[string]*ruleAlertState
}

// ruleAlertState is one rule's latest observed state.
type ruleAlertState struct {
	firing    bool
	firings   int
	metric    string
	value     float64
	threshold float64
}

// RuleAlertStatus is one alerting rule's summary in the snapshot.
type RuleAlertStatus struct {
	// Rule is the rule name, Metric the series it watches.
	Rule   string `json:"rule"`
	Metric string `json:"metric"`
	// Firing reports whether the rule was still firing at snapshot time;
	// Firings counts its distinct firing episodes.
	Firing  bool `json:"firing"`
	Firings int  `json:"firings"`
	// Value is the metric value carried by the rule's latest event;
	// Threshold the bound its last firing crossed.
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold,omitempty"`
}

// SeriesAlertsStatus summarizes the metric-rule alert history of a run. It is
// nil (omitted from JSON and the text report) when the stream carried no
// alert_firing/alert_resolved events, keeping rule-less captures unchanged.
type SeriesAlertsStatus struct {
	// Firings and Resolved count firing episodes and resolutions across all
	// rules.
	Firings  int `json:"firings"`
	Resolved int `json:"resolved"`
	// Rules lists every rule seen in the stream, sorted by name.
	Rules []RuleAlertStatus `json:"rules,omitempty"`
}

func (ss *seriesAlertState) observe(a *AnalyzerRecorder, e telemetry.Event) {
	if ss.rules == nil {
		ss.rules = map[string]*ruleAlertState{}
	}
	ss.seen = true
	rs := ss.rules[e.Name]
	if rs == nil {
		rs = &ruleAlertState{}
		ss.rules[e.Name] = rs
	}
	rs.metric = e.Reason
	rs.value = e.Value
	switch e.Kind {
	case telemetry.KindAlertFiring:
		ss.firings++
		rs.firing = true
		rs.firings++
		rs.threshold = e.Threshold
		a.note(e.Instance, "alert_firing", fmt.Sprintf("rule %s: %s = %.4g crossed %.4g",
			e.Name, e.Reason, e.Value, e.Threshold))
		a.raise(Alert{
			Type:      "rule",
			Instance:  e.Instance,
			Fork:      -1,
			Name:      e.Name,
			Value:     e.Value,
			Threshold: e.Threshold,
			Message: fmt.Sprintf("rule %s firing: %s = %.4g crossed %.4g",
				e.Name, e.Reason, e.Value, e.Threshold),
		})
	case telemetry.KindAlertResolved:
		ss.resolved++
		rs.firing = false
		a.note(e.Instance, "alert_ok", fmt.Sprintf("rule %s resolved: %s = %.4g",
			e.Name, e.Reason, e.Value))
	}
}

func (ss *seriesAlertState) snapshot() *SeriesAlertsStatus {
	if !ss.seen {
		return nil
	}
	st := &SeriesAlertsStatus{Firings: ss.firings, Resolved: ss.resolved}
	names := make([]string, 0, len(ss.rules))
	for name := range ss.rules {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rs := ss.rules[name]
		st.Rules = append(st.Rules, RuleAlertStatus{
			Rule:      name,
			Metric:    rs.metric,
			Firing:    rs.firing,
			Firings:   rs.firings,
			Value:     rs.value,
			Threshold: rs.threshold,
		})
	}
	return st
}
