package health

import (
	"fmt"

	"ctgdvfs/internal/telemetry"
)

// driftState is the estimator drift detector: per fork node it maintains an
// EWMA of the realized branch-outcome indicator vector (a fast empirical
// frequency) and an EWMA of the absolute error between that frequency and
// the profiler's windowed estimate carried by each KindEstimate event. A
// healthy estimator keeps the two aligned; when the error EWMA crosses the
// configured threshold the fork is flagged as drifting — the estimator's
// window is too long (or too short) for how fast the workload's branch
// statistics actually move.
type driftState struct {
	forks []forkDrift
}

// forkDrift is the per-fork detector state.
type forkDrift struct {
	seen      bool
	realized  []float64 // EWMA of outcome indicators (empirical frequency)
	estimate  []float64 // last windowed estimate from the stream
	errEWMA   float64
	lastErr   float64
	estimates int
	alerts    int
	alerting  bool // hysteresis latch: re-arms below threshold/2
}

// observe consumes one KindEstimate event. Called with the recorder lock
// held; a is the owning recorder (alert + metric sink).
func (d *driftState) observe(a *AnalyzerRecorder, e telemetry.Event) {
	for len(d.forks) <= e.Fork {
		d.forks = append(d.forks, forkDrift{})
	}
	f := &d.forks[e.Fork]
	if len(e.Probs) == 0 {
		return
	}
	if !f.seen || len(f.realized) != len(e.Probs) {
		// First sight of this fork: seed the realized frequency at the
		// estimate itself, so error measures subsequent divergence, not the
		// arbitrary distance from a zero vector.
		f.realized = append([]float64(nil), e.Probs...)
		f.seen = true
	}
	alpha := a.opts.DriftAlpha
	for k := range f.realized {
		f.realized[k] *= 1 - alpha
	}
	if e.Outcome >= 0 && e.Outcome < len(f.realized) {
		f.realized[e.Outcome] += alpha
	}
	f.estimate = append(f.estimate[:0], e.Probs...)

	err := 0.0
	for k := range f.realized {
		if d := abs(f.realized[k] - e.Probs[k]); d > err {
			err = d
		}
	}
	f.lastErr = err
	if f.estimates == 0 {
		f.errEWMA = err
	} else {
		f.errEWMA = (1-alpha)*f.errEWMA + alpha*err
	}
	f.estimates++

	threshold := a.opts.DriftThreshold
	switch {
	case !f.alerting && f.errEWMA >= threshold:
		f.alerting = true
		f.alerts++
		a.hm.driftAlerts.Inc()
		a.raise(Alert{
			Type:      "drift",
			Instance:  e.Instance,
			Fork:      e.Fork,
			Value:     f.errEWMA,
			Threshold: threshold,
			Message: fmt.Sprintf("fork %d estimate drifting: err EWMA %.3f >= %.3f",
				e.Fork, f.errEWMA, threshold),
		})
	case f.alerting && f.errEWMA < threshold/2:
		f.alerting = false
	}
	a.hm.driftErr.Set(d.maxErr())
}

// maxErr is the worst per-fork error EWMA (the adaptive.health.drift_err
// gauge).
func (d *driftState) maxErr() float64 {
	m := 0.0
	for i := range d.forks {
		if d.forks[i].errEWMA > m {
			m = d.forks[i].errEWMA
		}
	}
	return m
}

// ForkDrift is the exported per-fork drift summary.
type ForkDrift struct {
	Fork      int       `json:"fork"`
	Estimates int       `json:"estimates"`
	ErrEWMA   float64   `json:"err_ewma"`
	LastErr   float64   `json:"last_err"`
	Estimate  []float64 `json:"estimate,omitempty"`
	Realized  []float64 `json:"realized,omitempty"`
	Alerts    int       `json:"alerts"`
	Alerting  bool      `json:"alerting"`
}

func (d *driftState) snapshot() []ForkDrift {
	out := make([]ForkDrift, 0, len(d.forks))
	for fi := range d.forks {
		f := &d.forks[fi]
		if !f.seen {
			continue
		}
		out = append(out, ForkDrift{
			Fork:      fi,
			Estimates: f.estimates,
			ErrEWMA:   f.errEWMA,
			LastErr:   f.lastErr,
			Estimate:  append([]float64(nil), f.estimate...),
			Realized:  append([]float64(nil), f.realized...),
			Alerts:    f.alerts,
			Alerting:  f.alerting,
		})
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
