package health

import (
	"strings"
	"testing"

	"ctgdvfs/internal/telemetry"
)

// TestSeriesAlertsSection checks alert_firing/alert_resolved events from the
// rule engine surface as their own snapshot section, raise analyzer alerts,
// and render in the report — and that streams without them stay unchanged.
func TestSeriesAlertsSection(t *testing.T) {
	events := []telemetry.Event{
		{Kind: telemetry.KindAlertFiring, Instance: 5, Seq: 2, Cause: 1,
			Name: "miss-rate-high", Reason: "adaptive.miss_rate_window", Value: 0.3, Threshold: 0.11, Level: 1},
		{Kind: telemetry.KindAlertResolved, Instance: 9, Seq: 3, Cause: 2,
			Name: "miss-rate-high", Reason: "adaptive.miss_rate_window", Value: 0.05},
		{Kind: telemetry.KindAlertFiring, Instance: 12, Seq: 4,
			Name: "fleet-degraded", Reason: "adaptive.fleet_rung", Value: 2, Threshold: 1},
	}
	s := Analyze(events, Options{})
	sa := s.SeriesAlerts
	if sa == nil {
		t.Fatal("SeriesAlerts section missing")
	}
	if sa.Firings != 2 || sa.Resolved != 1 {
		t.Fatalf("firings/resolved = %d/%d, want 2/1", sa.Firings, sa.Resolved)
	}
	if len(sa.Rules) != 2 || sa.Rules[0].Rule != "fleet-degraded" || sa.Rules[1].Rule != "miss-rate-high" {
		t.Fatalf("rules not sorted by name: %+v", sa.Rules)
	}
	if !sa.Rules[0].Firing || sa.Rules[1].Firing {
		t.Fatalf("firing states wrong: %+v", sa.Rules)
	}
	if sa.Rules[1].Value != 0.05 || sa.Rules[1].Threshold != 0.11 {
		t.Fatalf("resolved rule keeps last value/threshold: %+v", sa.Rules[1])
	}
	// Each firing raises one analyzer alert of type "rule".
	if s.AlertsTotal != 2 {
		t.Fatalf("AlertsTotal = %d, want 2", s.AlertsTotal)
	}
	for _, al := range s.Alerts {
		if al.Type != "rule" {
			t.Fatalf("alert type %q, want rule", al.Type)
		}
	}

	report := s.Report()
	for _, want := range []string{
		"metric rule alerts",
		"firings 2  resolved 1",
		"[FIRING]",
		"rule miss-rate-high",
		"alert_firing",
		"alert_ok",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}

	// A stream without rule events keeps the section (and report) absent.
	empty := Analyze([]telemetry.Event{{Kind: telemetry.KindInstanceStart}}, Options{})
	if empty.SeriesAlerts != nil {
		t.Fatal("SeriesAlerts must be nil without alert events")
	}
	if strings.Contains(empty.Report(), "metric rule alerts") {
		t.Fatal("rule section rendered for a rule-less stream")
	}
}

// TestDescribeAlertEvents pins the explain vocabulary of the new kinds.
func TestDescribeAlertEvents(t *testing.T) {
	fire := telemetry.Event{Kind: telemetry.KindAlertFiring, Name: "hot",
		Reason: "adaptive.miss_rate_window", Value: 0.3, Threshold: 0.11, Level: 2}
	if got := Describe(fire); !strings.Contains(got, `alert "hot" firing`) ||
		!strings.Contains(got, "0.3 crossed 0.11") {
		t.Fatalf("firing description %q", got)
	}
	res := telemetry.Event{Kind: telemetry.KindAlertResolved, Name: "hot",
		Reason: "adaptive.miss_rate_window", Value: 0.02}
	if got := Describe(res); !strings.Contains(got, `alert "hot" resolved`) {
		t.Fatalf("resolve description %q", got)
	}
}
