package health_test

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"ctgdvfs/internal/core"
	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/health"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/telemetry"
	"ctgdvfs/internal/tgff"
	"ctgdvfs/internal/trace"
)

func testWorkload(t *testing.T, seed int64) (*ctg.Graph, *platform.Platform) {
	t.Helper()
	cfg := tgff.Config{Seed: seed, Nodes: 18, PEs: 3, Branches: 2, Category: tgff.ForkJoin}
	g, p, err := tgff.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g, p
}

// TestAnalyzerPassivity pins the health layer's headline guarantee: fanning
// an AnalyzerRecorder into the event stream changes neither the RunStats nor
// the recorded events — bit for bit.
func TestAnalyzerPassivity(t *testing.T) {
	run := func(attach bool) (core.RunStats, []telemetry.Event) {
		g, p := testWorkload(t, 12)
		mem := telemetry.NewMemoryRecorder()
		var rec telemetry.Recorder = mem
		if attach {
			rec = telemetry.MultiRecorder{mem, health.New(health.Options{})}
		}
		m, err := core.New(g, p, core.Options{Window: 10, Threshold: 0.1, Recorder: rec})
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run(trace.Fluctuating(g, 3, 60, 0.45))
		if err != nil {
			t.Fatal(err)
		}
		return st, mem.Events()
	}
	plainStats, plainEvents := run(false)
	monitoredStats, monitoredEvents := run(true)
	if plainStats != monitoredStats {
		t.Fatalf("health monitor changed RunStats:\nplain     %+v\nmonitored %+v",
			plainStats, monitoredStats)
	}
	// pipeline_span values are wall-clock durations — nondeterministic even
	// between two identical runs. The passivity property covers everything
	// else about the stream (kinds, order, seq/cause ids, payloads).
	for _, evs := range [][]telemetry.Event{plainEvents, monitoredEvents} {
		for i := range evs {
			if evs[i].Kind == telemetry.KindSpan {
				evs[i].Value = 0
			}
		}
	}
	if !reflect.DeepEqual(plainEvents, monitoredEvents) {
		t.Fatalf("health monitor changed the event stream: %d vs %d events",
			len(plainEvents), len(monitoredEvents))
	}
}

// estimateEvent builds one KindEstimate event as the manager emits it.
func estimateEvent(instance, fork int, probs []float64, outcome int) telemetry.Event {
	return telemetry.Event{
		Kind: telemetry.KindEstimate, Instance: instance, Fork: fork,
		Probs: probs, Outcome: outcome,
	}
}

// TestDriftDetectorAlertsAndRearms drives one fork from agreement into
// divergence and back: the alert must fire once (latched), then re-arm only
// after the error EWMA falls below half the threshold.
func TestDriftDetectorAlertsAndRearms(t *testing.T) {
	a := health.New(health.Options{DriftAlpha: 0.3, DriftThreshold: 0.2})
	// Estimator insists on [0.5 0.5] while reality always takes branch 0.
	for i := 0; i < 40; i++ {
		a.Record(estimateEvent(i, 0, []float64{0.5, 0.5}, 0))
	}
	s := a.Health()
	if len(s.Drift) != 1 {
		t.Fatalf("drift snapshot has %d forks, want 1", len(s.Drift))
	}
	f := s.Drift[0]
	if !f.Alerting {
		t.Fatalf("fork should be alerting: %+v", f)
	}
	if f.Alerts != 1 {
		t.Fatalf("alert latched %d times, want exactly 1 (hysteresis)", f.Alerts)
	}
	if f.ErrEWMA < 0.2 {
		t.Fatalf("err EWMA %.3f below threshold yet alerting", f.ErrEWMA)
	}
	if got := s.AlertsTotal; got != 1 {
		t.Fatalf("AlertsTotal = %d, want 1", got)
	}
	// Estimator catches up: estimates now match the all-branch-0 reality.
	for i := 40; i < 120; i++ {
		a.Record(estimateEvent(i, 0, []float64{1, 0}, 0))
	}
	f = a.Health().Drift[0]
	if f.Alerting {
		t.Fatalf("fork should have re-armed after recovery: %+v", f)
	}
	if f.ErrEWMA >= 0.1 {
		t.Fatalf("err EWMA %.3f did not decay below threshold/2", f.ErrEWMA)
	}
	// Metrics mirror: the drift gauge tracks the worst fork error.
	snap := a.Metrics().Snapshot()
	if snap.Counters["adaptive.health.drift_alerts"] != 1 {
		t.Fatalf("drift_alerts counter = %d, want 1",
			snap.Counters["adaptive.health.drift_alerts"])
	}
}

func finishEvent(instance int, met bool, lateness, makespan, energy float64) telemetry.Event {
	return telemetry.Event{
		Kind: telemetry.KindInstanceFinish, Instance: instance,
		Met: met, Lateness: lateness, Makespan: makespan, Energy: energy,
	}
}

// TestMissStreakAlert checks the streak detector fires exactly once when the
// configured run of consecutive misses is reached.
func TestMissStreakAlert(t *testing.T) {
	a := health.New(health.Options{MissStreak: 3, SLO: health.SLO{MaxMissRate: -1}})
	a.Record(finishEvent(0, true, 0, 10, 5))
	a.Record(finishEvent(1, false, 1, 11, 5))
	a.Record(finishEvent(2, false, 1, 11, 5))
	if got := a.Health().AlertsTotal; got != 0 {
		t.Fatalf("alert before the streak completed (%d)", got)
	}
	a.Record(finishEvent(3, false, 1, 11, 5))
	a.Record(finishEvent(4, false, 1, 11, 5)) // streak 4: no second alert
	s := a.Health()
	if s.AlertsTotal != 1 || len(s.Alerts) != 1 || s.Alerts[0].Type != "miss_streak" {
		t.Fatalf("want exactly one miss_streak alert, got %+v", s.Alerts)
	}
	if s.SLO.CurStreak != 4 || s.SLO.MaxStreak != 4 {
		t.Fatalf("streak tracking wrong: %+v", s.SLO)
	}
	a.Record(finishEvent(5, true, 0, 10, 5))
	if got := a.Health().SLO.CurStreak; got != 0 {
		t.Fatalf("streak did not reset on a met deadline: %d", got)
	}
}

// TestSLOVerdictsAndBudgetBurn checks verdict scoring, the warm-up pending
// flag, the pass→fail transition alert, and the budget-burn rate.
func TestSLOVerdictsAndBudgetBurn(t *testing.T) {
	a := health.New(health.Options{
		SLO:        health.SLO{MaxMissRate: 0.25, MaxAvgEnergy: 100},
		SLOWarmup:  4,
		MissStreak: 100, // keep streak alerts out of the way
	})
	a.Record(finishEvent(0, true, 0, 10, 50))
	s := a.Health()
	if len(s.SLO.Verdicts) != 2 {
		t.Fatalf("want 2 verdicts (miss_rate, avg_energy), got %+v", s.SLO.Verdicts)
	}
	for _, v := range s.SLO.Verdicts {
		if !v.Pending {
			t.Fatalf("verdict %s should be pending during warm-up", v.Name)
		}
	}
	a.Record(finishEvent(1, true, 0, 10, 50))
	a.Record(finishEvent(2, false, 2, 12, 50))
	a.Record(finishEvent(3, false, 2, 12, 50))
	s = a.Health()
	// miss rate 2/4 = 0.5 > 0.25: FAIL and alerted exactly once.
	var miss *health.Verdict
	for i := range s.SLO.Verdicts {
		if s.SLO.Verdicts[i].Name == "miss_rate" {
			miss = &s.SLO.Verdicts[i]
		}
	}
	if miss == nil || miss.Pass || miss.Pending {
		t.Fatalf("miss_rate verdict wrong: %+v", s.SLO.Verdicts)
	}
	var sloAlerts int
	for _, al := range s.Alerts {
		if al.Type == "slo" {
			sloAlerts++
		}
	}
	if sloAlerts != 1 {
		t.Fatalf("want one slo alert on the pass→fail transition, got %d", sloAlerts)
	}
	if want := 0.5 / 0.25; s.SLO.BudgetBurn != want {
		t.Fatalf("budget burn = %v, want %v", s.SLO.BudgetBurn, want)
	}
	if s.SLO.AvgEnergy != 50 {
		t.Fatalf("avg energy = %v, want 50", s.SLO.AvgEnergy)
	}
}

// TestHotspotAttribution drives two instances of synthetic slices and checks
// ranking order and critical-path attribution, including the
// fallback-supersedes-primary rule.
func TestHotspotAttribution(t *testing.T) {
	a := health.New(health.Options{})
	slice := func(inst, task int, name string, pe int, start, end, energy float64, phase string) telemetry.Event {
		return telemetry.Event{
			Kind: telemetry.KindTaskSlice, Instance: inst, Task: task, Name: name,
			PE: pe, Start: start, End: end, Energy: energy, Phase: phase,
		}
	}
	// Instance 0: task 1 ends last on the primary timeline.
	a.Record(slice(0, 0, "src", 0, 0, 4, 2, ""))
	a.Record(slice(0, 1, "dec", 1, 4, 10, 3, ""))
	a.Record(telemetry.Event{
		Kind: telemetry.KindCommSlice, Instance: 0, Edge: 0, Task: 0, Task2: 1,
		PE: 0, PE2: 1, Start: 4, End: 5, Energy: 1,
	})
	a.Record(finishEvent(0, true, 0, 10, 5))
	// Instance 1: primary ends with task 1, but a fallback replay ran and its
	// terminal is task 0 — the fallback wins the critical credit.
	a.Record(slice(1, 1, "dec", 1, 0, 9, 3, ""))
	a.Record(slice(1, 0, "src", 0, 0, 6, 2, telemetry.PhaseFallback))
	a.Record(finishEvent(1, false, 1, 11, 5))

	s := a.Health()
	if s.Instances != 2 {
		t.Fatalf("instances = %d, want 2", s.Instances)
	}
	if len(s.Hotspots.Tasks) != 2 || len(s.Hotspots.PEs) != 2 || len(s.Hotspots.Links) != 1 {
		t.Fatalf("hotspot shape wrong: %+v", s.Hotspots)
	}
	// Each task was critical once; tie broken by busy time (task 1: 6+9=15).
	top := s.Hotspots.Tasks[0]
	if top.Task != 1 || top.Critical != 1 || top.Busy != 15 {
		t.Fatalf("top task wrong: %+v", top)
	}
	if s.Hotspots.Tasks[1].Critical != 1 {
		t.Fatalf("fallback terminal not credited: %+v", s.Hotspots.Tasks[1])
	}
	if l := s.Hotspots.Links[0]; l.From != 0 || l.To != 1 || l.Transfers != 1 || l.Busy != 1 {
		t.Fatalf("link attribution wrong: %+v", l)
	}
}

// TestTimelineAndAlertSink checks decision-timeline capture, bounded
// eviction, and the typed alert events sent into the Alerts sink.
func TestTimelineAndAlertSink(t *testing.T) {
	sink := telemetry.NewMemoryRecorder()
	a := health.New(health.Options{Timeline: 4, MissStreak: 2, Alerts: sink,
		SLO: health.SLO{MaxMissRate: -1}})
	a.Record(telemetry.Event{Kind: telemetry.KindReschedule, Instance: 0, Reason: "initial"})
	a.Record(telemetry.Event{Kind: telemetry.KindReschedule, Instance: 3, Reason: "drift", CacheHit: true})
	a.Record(telemetry.Event{Kind: telemetry.KindGuardLevel, Instance: 4, Level: 2, Level2: 1})
	a.Record(telemetry.Event{Kind: telemetry.KindFallback, Instance: 5, Met: true})
	a.Record(finishEvent(5, false, 1, 11, 5))
	a.Record(finishEvent(6, false, 1, 11, 5)) // miss_streak alert → timeline entry 5 of 4
	s := a.Health()
	if len(s.Timeline) != 4 || s.TimelineDropped != 1 {
		t.Fatalf("timeline bound broken: %d entries, %d dropped", len(s.Timeline), s.TimelineDropped)
	}
	// Oldest entry ("initial" reschedule) evicted; newest is the alert.
	if s.Timeline[0].Kind != "reschedule" || !strings.Contains(s.Timeline[0].Detail, "cache hit") {
		t.Fatalf("unexpected oldest entry: %+v", s.Timeline[0])
	}
	if s.Timeline[3].Kind != "alert" {
		t.Fatalf("unexpected newest entry: %+v", s.Timeline[3])
	}
	if s.SLO.Fallbacks != 1 || s.SLO.FallbacksSaved != 1 || s.SLO.GuardLevel != 2 {
		t.Fatalf("decision counters wrong: %+v", s.SLO)
	}
	// The sink received the typed alert event.
	evs := sink.Events()
	if len(evs) != 1 || evs[0].Kind != telemetry.KindHealthAlert || evs[0].Reason != "miss_streak" {
		t.Fatalf("alert sink got %+v", evs)
	}
}

// TestServeHTTP checks the /health endpoint serves the snapshot as JSON.
func TestServeHTTP(t *testing.T) {
	a := health.New(health.Options{})
	a.Record(finishEvent(0, true, 0, 10, 5))
	rr := httptest.NewRecorder()
	a.ServeHTTP(rr, httptest.NewRequest("GET", "/health", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var s health.Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.Instances != 1 || s.Events != 1 {
		t.Fatalf("served snapshot wrong: %+v", s)
	}
}
