package health

import (
	"strings"
	"testing"

	"ctgdvfs/internal/telemetry"
)

func TestPowerBudgetAlertLatchesUntilRestore(t *testing.T) {
	a := New(Options{})
	exceeded := func(inst, level int, mean, cap float64) {
		a.Record(telemetry.Event{Kind: telemetry.KindBudgetExceeded, Instance: inst,
			Value: mean, Threshold: cap, Level: level})
	}

	exceeded(8, 0, 12.5, 10)
	exceeded(9, 0, 12.1, 10) // still violating: latched, no second alert
	a.Record(telemetry.Event{Kind: telemetry.KindPERevoked, Instance: 10,
		PE: 3, Name: "decoder", Level: 2, Alive: 1})
	a.Record(telemetry.Event{Kind: telemetry.KindTenantDegraded, Instance: 18,
		Name: "decoder", Reason: "shed", Level: 3})
	a.Record(telemetry.Event{Kind: telemetry.KindTenantRestored, Instance: 40,
		Name: "decoder", Reason: "shed", Level: 2})
	exceeded(55, 2, 11.0, 10) // re-armed by the restore: alerts again

	s := a.Health()
	if s.AlertsTotal != 2 {
		t.Fatalf("AlertsTotal = %d, want 2 (latched until restore)", s.AlertsTotal)
	}
	for _, al := range s.Alerts {
		if al.Type != "power" {
			t.Fatalf("alert type %q, want power", al.Type)
		}
	}
	ps := s.Power
	if ps == nil {
		t.Fatal("Power missing from snapshot")
	}
	if ps.OverWindows != 3 || ps.Cap != 10 || ps.MaxWindowMean != 12.5 {
		t.Fatalf("power status = %+v", ps)
	}
	if ps.Revocations != 1 || ps.Sheds != 1 || ps.Degrades != 1 || ps.Restores != 1 {
		t.Fatalf("ladder counts = %+v", ps)
	}
	if ps.MaxLevel != 3 || ps.Level != 2 {
		t.Fatalf("levels = %+v", ps)
	}
	if len(ps.ShedTenants) != 0 {
		t.Fatalf("restored tenant still listed as shed: %v", ps.ShedTenants)
	}
	report := s.Report()
	if !strings.Contains(report, "power budget") ||
		!strings.Contains(report, "over-cap windows 3") {
		t.Fatalf("report missing power section:\n%s", report)
	}
}

func TestPowerShedTenantsListedUntilRestored(t *testing.T) {
	a := New(Options{})
	a.Record(telemetry.Event{Kind: telemetry.KindTenantDegraded, Instance: 5,
		Name: "wlan", Reason: "shed", Level: 4})
	a.Record(telemetry.Event{Kind: telemetry.KindTenantDegraded, Instance: 12,
		Name: "cruise", Reason: "shed", Level: 5})
	a.Record(telemetry.Event{Kind: telemetry.KindTenantRestored, Instance: 30,
		Name: "cruise", Reason: "shed", Level: 4})

	ps := a.Health().Power
	if ps == nil || len(ps.ShedTenants) != 1 || ps.ShedTenants[0] != "wlan" {
		t.Fatalf("shed tenants = %+v", ps)
	}
	if !strings.Contains(a.Health().Report(), "[SHED]") {
		t.Fatal("report missing shed-tenant marker")
	}
}

func TestUnbudgetedStreamOmitsPower(t *testing.T) {
	a := New(Options{})
	a.Record(telemetry.Event{Kind: telemetry.KindInstanceFinish, Instance: 0, Met: true})
	s := a.Health()
	if s.Power != nil {
		t.Fatal("power section present without budget events")
	}
	if strings.Contains(s.Report(), "power budget") {
		t.Fatal("report renders power section without data")
	}
}
