package health_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ctgdvfs/internal/apps/mpeg"
	"ctgdvfs/internal/core"
	"ctgdvfs/internal/health"
	"ctgdvfs/internal/telemetry"
	"ctgdvfs/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// mpegEvents replays the examples/telemetry setup — the MPEG decoder
// profiled on one movie clip and measured on the next — and returns the
// recorded event stream. The run is deterministic, so the analysis report
// over it is golden-file testable.
func mpegEvents(t *testing.T, n int) []telemetry.Event {
	t.Helper()
	g0, p, err := mpeg.Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.TightenDeadline(g0, p, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	vec := trace.MovieClips()[0].Generate(g, 1000+n)
	if err := trace.ApplyProfile(g, trace.AverageProbs(g, vec[:1000])); err != nil {
		t.Fatal(err)
	}
	rec := telemetry.NewMemoryRecorder()
	m, err := core.New(g, p, core.Options{Window: 20, Threshold: 0.1, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(vec[1000:]); err != nil {
		t.Fatal(err)
	}
	return rec.Events()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("report drifted from %s — diff:\n%s\n(re-bless with -update if intended)",
			path, diffLines(string(want), got))
	}
}

// diffLines renders a minimal first-divergence diff for test failure output.
func diffLines(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(w) || i < len(g); i++ {
		var lw, lg string
		if i < len(w) {
			lw = w[i]
		}
		if i < len(g) {
			lg = g[i]
		}
		if lw != lg {
			return "line " + string(rune('0'+i%10)) + ":\n-" + lw + "\n+" + lg
		}
	}
	return "(no line diff?)"
}

// TestReportGoldenJSONL pins the full analyze pipeline: MPEG run → JSONL
// roundtrip → Analyze → Report, compared byte-for-byte against the golden
// file. This is the same path `ctgsched analyze events.jsonl` takes.
func TestReportGoldenJSONL(t *testing.T) {
	events := mpegEvents(t, 60)

	// Roundtrip through the JSONL encoding, as the CLI would read it.
	var buf bytes.Buffer
	jr := telemetry.NewJSONLRecorder(&buf)
	for _, e := range events {
		jr.Record(e)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, format, err := health.LoadEvents(buf.Bytes(), "")
	if err != nil {
		t.Fatal(err)
	}
	if format != "jsonl" {
		t.Fatalf("format = %q, want jsonl", format)
	}
	if len(loaded) != len(events) {
		t.Fatalf("JSONL roundtrip lost events: %d vs %d", len(loaded), len(events))
	}

	// pipeline_span values are wall-clock latencies — nondeterministic
	// between runs. Zero them so the golden pins the section's shape (phase
	// names, span counts) without the volatile durations.
	for i := range loaded {
		if loaded[i].Kind == telemetry.KindSpan {
			loaded[i].Value = 0
		}
	}

	s := health.Analyze(loaded, health.Options{})
	report := s.Report()

	// The acceptance floor: at least one drift measurement, one SLO verdict
	// and one hotspot ranking must appear regardless of golden content.
	if len(s.Drift) == 0 || s.Drift[0].Estimates == 0 {
		t.Fatal("report carries no drift measurements")
	}
	if len(s.SLO.Verdicts) == 0 {
		t.Fatal("report carries no SLO verdicts")
	}
	if len(s.Hotspots.Tasks) == 0 || len(s.Hotspots.PEs) == 0 {
		t.Fatal("report carries no hotspot rankings")
	}
	checkGolden(t, "mpeg_report.golden", report)
}

// TestReportGoldenChrome pins the Chrome-trace ingestion path: the same run
// exported as a trace file, converted back, analyzed. The projection is
// lossy (no estimate or instance-summary events), so this has its own
// golden; drift must honestly report no data while hotspots survive.
func TestReportGoldenChrome(t *testing.T) {
	events := mpegEvents(t, 60)
	ct := telemetry.NewChromeTrace()
	ct.AddRun("mpeg adaptive", 1, events)
	var buf bytes.Buffer
	if err := ct.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, format, err := health.LoadEvents(buf.Bytes(), "mpeg adaptive")
	if err != nil {
		t.Fatal(err)
	}
	if format != "chrome" {
		t.Fatalf("format = %q, want chrome", format)
	}
	s := health.Analyze(loaded, health.Options{})
	if len(s.Drift) != 0 {
		t.Fatal("chrome traces carry no estimates; drift section must be empty")
	}
	if s.Instances == 0 {
		t.Fatal("instance count not reconstructed from trace boundaries")
	}
	if len(s.Hotspots.Tasks) == 0 || len(s.Hotspots.Links) == 0 {
		t.Fatal("hotspots not reconstructed from trace slices")
	}
	checkGolden(t, "mpeg_report_chrome.golden", s.Report())
}

// TestLoadEventsErrors covers the reader's failure modes.
func TestLoadEventsErrors(t *testing.T) {
	if _, _, err := health.LoadEvents([]byte("not json at all"), ""); err == nil {
		t.Fatal("garbage input must error")
	}
	events := mpegEvents(t, 5)
	ct := telemetry.NewChromeTrace()
	ct.AddRun("a", 1, events)
	ct.AddRun("b", 2, events)
	var buf bytes.Buffer
	if err := ct.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, _, err := health.LoadEvents(buf.Bytes(), ""); err == nil ||
		!strings.Contains(err.Error(), "pick one with -run") {
		t.Fatalf("multi-run trace without -run must error, got %v", err)
	}
	if _, _, err := health.LoadEvents(buf.Bytes(), "nope"); err == nil ||
		!strings.Contains(err.Error(), `run "nope" not in trace`) {
		t.Fatalf("unknown run must error, got %v", err)
	}
	if evs, _, err := health.LoadEvents(buf.Bytes(), "b"); err != nil || len(evs) == 0 {
		t.Fatalf("selecting run b failed: %d events, %v", len(evs), err)
	}
}
