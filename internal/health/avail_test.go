package health

import (
	"strings"
	"testing"

	"ctgdvfs/internal/telemetry"
)

func TestAvailabilityAlertsLatchPerPE(t *testing.T) {
	a := New(Options{})
	down := func(inst, pe, alive int, reason string) {
		a.Record(telemetry.Event{Kind: telemetry.KindPEDown, Instance: inst, PE: pe, Alive: alive, Reason: reason})
	}
	up := func(inst, pe, alive int) {
		a.Record(telemetry.Event{Kind: telemetry.KindPEUp, Instance: inst, PE: pe, Alive: alive})
	}

	down(3, 1, 2, "transient")
	down(4, 1, 2, "transient") // still down: latched, no second alert
	up(6, 1, 3)
	down(9, 1, 2, "transient") // re-armed: alerts again
	down(12, 0, 1, "permanent")

	s := a.Health()
	if s.AlertsTotal != 3 {
		t.Fatalf("AlertsTotal = %d, want 3 (latched per PE)", s.AlertsTotal)
	}
	if s.Availability == nil {
		t.Fatal("Availability missing from snapshot")
	}
	if len(s.Availability.PEs) != 2 {
		t.Fatalf("PE records = %d, want 2", len(s.Availability.PEs))
	}
	pe0, pe1 := s.Availability.PEs[0], s.Availability.PEs[1]
	if pe0.PE != 0 || !pe0.Permanent || !pe0.Down || pe0.Outages != 1 {
		t.Fatalf("PE 0 record = %+v", pe0)
	}
	if pe1.PE != 1 || pe1.Permanent || !pe1.Down || pe1.Outages != 3 {
		t.Fatalf("PE 1 record = %+v", pe1)
	}
	for _, al := range s.Alerts {
		if al.Type != "availability" {
			t.Fatalf("alert type %q, want availability", al.Type)
		}
	}
	report := s.Report()
	if !strings.Contains(report, "hardware availability") ||
		!strings.Contains(report, "DEAD (permanent)") {
		t.Fatalf("report missing availability section:\n%s", report)
	}
}

func TestAvailabilityRemapAndLinkAccounting(t *testing.T) {
	a := New(Options{})
	a.Record(telemetry.Event{Kind: telemetry.KindLinkDown, Instance: 2, PE: 0, PE2: 1})
	a.Record(telemetry.Event{Kind: telemetry.KindRemap, Instance: 2, Reason: "degraded", Alive: 2})
	a.Record(telemetry.Event{Kind: telemetry.KindLinkUp, Instance: 5, PE: 0, PE2: 1})
	a.Record(telemetry.Event{Kind: telemetry.KindRemap, Instance: 5, Reason: "restored", Alive: 3})

	s := a.Health()
	av := s.Availability
	if av == nil || av.LinkDowns != 1 || av.Remaps != 1 || av.Restores != 1 {
		t.Fatalf("availability = %+v", av)
	}
	// Link-only degradation raises no PE alert.
	if s.AlertsTotal != 0 {
		t.Fatalf("AlertsTotal = %d, want 0", s.AlertsTotal)
	}
}

func TestHealthyStreamOmitsAvailability(t *testing.T) {
	a := New(Options{})
	a.Record(telemetry.Event{Kind: telemetry.KindInstanceFinish, Instance: 0, Met: true})
	s := a.Health()
	if s.Availability != nil {
		t.Fatal("availability section present without availability events")
	}
	if strings.Contains(s.Report(), "hardware availability") {
		t.Fatal("report renders availability section without data")
	}
}
