package health

import (
	"sort"

	"ctgdvfs/internal/telemetry"
)

// hotState is the hotspot attributor: it folds every task and communication
// slice into per-task, per-PE and per-link accumulators and, at each
// instance boundary, credits the instance's critical-path terminal — the
// task slice that finished last — so the snapshot can rank what actually
// ends the schedule, not just what runs longest.
type hotState struct {
	instances int

	tasks map[int]*taskAcc
	pes   map[int]*peAcc
	links map[linkKey]*linkAcc

	// pending is the per-instance critical-path candidate: the latest-ending
	// task slice seen since the last commit, tracked separately for the
	// primary and fallback phases (a fallback replay supersedes the primary
	// timeline it replaced).
	pending map[int]*pendingInst
}

type taskAcc struct {
	name     string
	busy     float64
	energy   float64
	slices   int
	critical int
}

type peAcc struct {
	busy   float64
	energy float64
	slices int
}

type linkKey struct{ from, to int }

type linkAcc struct {
	busy      float64
	energy    float64
	transfers int
}

type pendingInst struct {
	primTask, fbTask bool
	primEnd, fbEnd   float64
	primID, fbID     int
}

func (h *hotState) init() {
	h.tasks = make(map[int]*taskAcc)
	h.pes = make(map[int]*peAcc)
	h.links = make(map[linkKey]*linkAcc)
	h.pending = make(map[int]*pendingInst)
}

func (h *hotState) task(id int) *taskAcc {
	t := h.tasks[id]
	if t == nil {
		t = &taskAcc{}
		h.tasks[id] = t
	}
	return t
}

func (h *hotState) observeTask(e telemetry.Event) {
	dur := e.End - e.Start
	t := h.task(e.Task)
	if e.Name != "" {
		t.name = e.Name
	}
	t.busy += dur
	t.energy += e.Energy
	t.slices++

	p := h.pes[e.PE]
	if p == nil {
		p = &peAcc{}
		h.pes[e.PE] = p
	}
	p.busy += dur
	p.energy += e.Energy
	p.slices++

	pi := h.pending[e.Instance]
	if pi == nil {
		pi = &pendingInst{}
		h.pending[e.Instance] = pi
	}
	if e.Phase == telemetry.PhaseFallback {
		if !pi.fbTask || e.End > pi.fbEnd {
			pi.fbTask, pi.fbEnd, pi.fbID = true, e.End, e.Task
		}
	} else {
		if !pi.primTask || e.End > pi.primEnd {
			pi.primTask, pi.primEnd, pi.primID = true, e.End, e.Task
		}
	}
}

func (h *hotState) observeComm(e telemetry.Event) {
	k := linkKey{from: e.PE, to: e.PE2}
	l := h.links[k]
	if l == nil {
		l = &linkAcc{}
		h.links[k] = l
	}
	l.busy += e.End - e.Start
	l.energy += e.Energy
	l.transfers++
}

// commit closes one instance: credits its critical-path terminal task and
// advances the instance count. When the instance ran a fallback replay, the
// fallback timeline's terminal is the one that mattered.
func (h *hotState) commit(instance int) {
	h.instances++
	pi := h.pending[instance]
	if pi == nil {
		return
	}
	delete(h.pending, instance)
	switch {
	case pi.fbTask:
		h.task(pi.fbID).critical++
	case pi.primTask:
		h.task(pi.primID).critical++
	}
}

// instanceCount is the number of instances seen: committed ones plus those
// still pending a finish event (converted Chrome traces carry no instance
// summaries, so their instances never commit).
func (h *hotState) instanceCount() int { return h.instances + len(h.pending) }

// TaskHotspot is one ranked task.
type TaskHotspot struct {
	Task   int     `json:"task"`
	Name   string  `json:"name,omitempty"`
	Busy   float64 `json:"busy"`
	Energy float64 `json:"energy"`
	Slices int     `json:"slices"`
	// Critical counts the instances this task ended last in — its
	// critical-path terminal count.
	Critical int `json:"critical"`
}

// PEHotspot is one ranked processing element.
type PEHotspot struct {
	PE     int     `json:"pe"`
	Busy   float64 `json:"busy"`
	Energy float64 `json:"energy"`
	Slices int     `json:"slices"`
}

// LinkHotspot is one ranked interconnect link (directed PE pair).
type LinkHotspot struct {
	From      int     `json:"from"`
	To        int     `json:"to"`
	Busy      float64 `json:"busy"`
	Energy    float64 `json:"energy"`
	Transfers int     `json:"transfers"`
}

// Hotspots is the exported attribution summary: the top-N rankings.
type Hotspots struct {
	Tasks []TaskHotspot `json:"tasks,omitempty"`
	PEs   []PEHotspot   `json:"pes,omitempty"`
	Links []LinkHotspot `json:"links,omitempty"`
}

func (h *hotState) snapshot(topN int) Hotspots {
	var out Hotspots
	for id, t := range h.tasks {
		out.Tasks = append(out.Tasks, TaskHotspot{
			Task: id, Name: t.name, Busy: t.busy, Energy: t.energy,
			Slices: t.slices, Critical: t.critical,
		})
	}
	sort.Slice(out.Tasks, func(i, j int) bool {
		a, b := out.Tasks[i], out.Tasks[j]
		if a.Critical != b.Critical {
			return a.Critical > b.Critical
		}
		if a.Busy != b.Busy {
			return a.Busy > b.Busy
		}
		return a.Task < b.Task
	})
	for id, p := range h.pes {
		out.PEs = append(out.PEs, PEHotspot{
			PE: id, Busy: p.busy, Energy: p.energy, Slices: p.slices,
		})
	}
	sort.Slice(out.PEs, func(i, j int) bool {
		a, b := out.PEs[i], out.PEs[j]
		if a.Busy != b.Busy {
			return a.Busy > b.Busy
		}
		return a.PE < b.PE
	})
	for k, l := range h.links {
		out.Links = append(out.Links, LinkHotspot{
			From: k.from, To: k.to, Busy: l.busy, Energy: l.energy,
			Transfers: l.transfers,
		})
	}
	sort.Slice(out.Links, func(i, j int) bool {
		a, b := out.Links[i], out.Links[j]
		if a.Busy != b.Busy {
			return a.Busy > b.Busy
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	if topN > 0 {
		if len(out.Tasks) > topN {
			out.Tasks = out.Tasks[:topN]
		}
		if len(out.PEs) > topN {
			out.PEs = out.PEs[:topN]
		}
		if len(out.Links) > topN {
			out.Links = out.Links[:topN]
		}
	}
	return out
}
