package health

import (
	"fmt"
	"sort"

	"ctgdvfs/internal/telemetry"
)

// powerState tracks the power-budget governor from the budget_exceeded/
// pe_revoked/tenant_degraded/tenant_restored event kinds a consolidation
// fleet emits. The cap-violation alert latches: the first exceeded window
// raises it, and it re-arms only when the fleet reports a restoration — a
// sustained violation is one alert, not one per rolling window.
type powerState struct {
	seen     bool
	alerting bool

	cap         float64
	overWindows int
	maxWindow   float64
	level       int
	maxLevel    int
	revocations int
	degrades    int
	restores    int
	sheds       int
	shedTenants map[string]bool // tenants currently shed
}

// PowerStatus summarizes the power-budget history of a run. It is nil
// (omitted from JSON and the text report) when the stream carried no budget
// events at all, keeping unbudgeted-run output unchanged.
type PowerStatus struct {
	// Cap is the configured chip power cap (every budget event carries it
	// as its threshold).
	Cap float64 `json:"cap,omitempty"`
	// OverWindows counts full measurement windows whose mean exceeded the
	// cap; MaxWindowMean is the worst offending mean observed.
	OverWindows   int     `json:"over_windows"`
	MaxWindowMean float64 `json:"max_window_mean,omitempty"`
	// Level and MaxLevel are the degradation-ladder level last reported and
	// the deepest level seen.
	Level    int `json:"level"`
	MaxLevel int `json:"max_level"`
	// Revocations, Degrades, Restores and Sheds count the ladder moves.
	Revocations int `json:"revocations"`
	Degrades    int `json:"degrades"`
	Restores    int `json:"restores"`
	Sheds       int `json:"sheds"`
	// ShedTenants lists tenants still shed at snapshot time.
	ShedTenants []string `json:"shed_tenants,omitempty"`
}

func (ps *powerState) observe(a *AnalyzerRecorder, e telemetry.Event) {
	if ps.shedTenants == nil {
		ps.shedTenants = map[string]bool{}
	}
	ps.seen = true
	ps.trackLevel(e.Level)
	// Every fleet budget event carries the configured cap as its threshold,
	// so the snapshot knows the cap even when priming kept all windows under
	// it and no budget_exceeded was ever emitted.
	if e.Threshold > 0 {
		ps.cap = e.Threshold
	}
	switch e.Kind {
	case telemetry.KindBudgetExceeded:
		ps.overWindows++
		ps.cap = e.Threshold
		if e.Value > ps.maxWindow {
			ps.maxWindow = e.Value
		}
		a.note(e.Instance, "budget", fmt.Sprintf("window mean %.3f over cap %.3f (level %d)",
			e.Value, e.Threshold, e.Level))
		if !ps.alerting {
			ps.alerting = true
			a.raise(Alert{
				Type:      "power",
				Instance:  e.Instance,
				Fork:      -1,
				Name:      "budget",
				Value:     e.Value,
				Threshold: e.Threshold,
				Message: fmt.Sprintf("chip power %.3f exceeded cap %.3f at ladder level %d",
					e.Value, e.Threshold, e.Level),
			})
		}
	case telemetry.KindPERevoked:
		ps.revocations++
		a.note(e.Instance, "pe_revoked", fmt.Sprintf("PE %d from %s, %d held (level %d)",
			e.PE, e.Name, e.Alive, e.Level))
	case telemetry.KindTenantDegraded:
		ps.degrades++
		if e.Reason == "shed" {
			ps.sheds++
			ps.shedTenants[e.Name] = true
		}
		a.note(e.Instance, "degraded", powerRungDetail(e))
	case telemetry.KindTenantRestored:
		ps.restores++
		if e.Reason == "shed" {
			delete(ps.shedTenants, e.Name)
		}
		// Re-arm the latch: the fleet found headroom to climb back down, so
		// a later violation is a new incident.
		ps.alerting = false
		a.note(e.Instance, "restored", powerRungDetail(e))
	}
}

// trackLevel follows the ladder level carried by every budget event.
func (ps *powerState) trackLevel(level int) {
	ps.level = level
	if level > ps.maxLevel {
		ps.maxLevel = level
	}
}

// powerRungDetail renders one ladder rung for the timeline.
func powerRungDetail(e telemetry.Event) string {
	switch e.Reason {
	case "guard":
		return fmt.Sprintf("guard scale %.2g fleet-wide (level %d)", e.Value, e.Level)
	case "shed":
		return fmt.Sprintf("tenant %s shed (level %d)", e.Name, e.Level)
	default:
		return fmt.Sprintf("tenant %s %s (level %d)", e.Name, e.Reason, e.Level)
	}
}

func (ps *powerState) snapshot() *PowerStatus {
	if !ps.seen {
		return nil
	}
	st := &PowerStatus{
		Cap:           ps.cap,
		OverWindows:   ps.overWindows,
		MaxWindowMean: ps.maxWindow,
		Level:         ps.level,
		MaxLevel:      ps.maxLevel,
		Revocations:   ps.revocations,
		Degrades:      ps.degrades,
		Restores:      ps.restores,
		Sheds:         ps.sheds,
	}
	for name := range ps.shedTenants {
		st.ShedTenants = append(st.ShedTenants, name)
	}
	sort.Strings(st.ShedTenants)
	return st
}
