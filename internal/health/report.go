package health

import (
	"fmt"
	"strings"
)

// Snapshot is the full state of an AnalyzerRecorder at one point in time —
// what /health serves as JSON and what Report renders as text.
type Snapshot struct {
	Events    int `json:"events"`
	Instances int `json:"instances"`

	Drift    []ForkDrift `json:"drift,omitempty"`
	SLO      SLOStatus   `json:"slo"`
	Hotspots Hotspots    `json:"hotspots"`
	// Availability is nil when the stream carried no pe_down/pe_up/remap
	// events, so healthy-run snapshots and reports are unchanged.
	Availability *AvailabilityStatus `json:"availability,omitempty"`
	// Power is nil when the stream carried no power-budget events, so
	// unbudgeted-run snapshots and reports are unchanged.
	Power *PowerStatus `json:"power,omitempty"`
	// Pipeline is nil when the stream carried no pipeline_span events, so
	// pre-provenance captures render unchanged.
	Pipeline *PipelineStatus `json:"pipeline,omitempty"`
	// SeriesAlerts is nil when the stream carried no alert_firing/
	// alert_resolved events (no alerting rules were configured), so rule-less
	// captures render unchanged.
	SeriesAlerts *SeriesAlertsStatus `json:"series_alerts,omitempty"`

	Timeline        []TimelineEntry `json:"timeline,omitempty"`
	TimelineDropped int             `json:"timeline_dropped,omitempty"`
	Alerts          []Alert         `json:"alerts,omitempty"`
	AlertsTotal     int             `json:"alerts_total"`
}

// levelMove renders a guard-level transition for the timeline.
func levelMove(from, to int) string {
	switch {
	case to > from:
		return fmt.Sprintf("raised %d -> %d", from, to)
	case to < from:
		return fmt.Sprintf("relaxed %d -> %d", from, to)
	default:
		return fmt.Sprintf("held at %d", to)
	}
}

// Report renders the snapshot as the deterministic plain-text diagnosis the
// `ctgsched analyze` subcommand prints: header, per-fork drift, SLO
// verdicts, hotspot rankings and the decision timeline. The format is fixed
// (%.3f / %.1f) so the output is golden-file testable.
func (s Snapshot) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "health report: %d events, %d instances, %d alerts\n",
		s.Events, s.Instances, s.AlertsTotal)

	b.WriteString("\nestimator drift\n")
	if len(s.Drift) == 0 {
		b.WriteString("  (no data)\n")
	}
	for _, f := range s.Drift {
		state := "ok"
		if f.Alerting {
			state = "DRIFTING"
		}
		fmt.Fprintf(&b, "  fork %d: err ewma %.3f (last %.3f), %d estimates, %d alerts [%s]\n",
			f.Fork, f.ErrEWMA, f.LastErr, f.Estimates, f.Alerts, state)
		fmt.Fprintf(&b, "    estimate %s  realized %s\n",
			probsString(f.Estimate), probsString(f.Realized))
	}

	b.WriteString("\nSLO\n")
	fmt.Fprintf(&b, "  instances %d  misses %d (rate %.3f)  overruns %d  miss streak %d (max %d)\n",
		s.SLO.Instances, s.SLO.Misses, s.SLO.MissRate, s.SLO.Overruns,
		s.SLO.CurStreak, s.SLO.MaxStreak)
	fmt.Fprintf(&b, "  reschedules %d (%d cache hits)  fallbacks %d (%d saved)  guard level %d (max %d)\n",
		s.SLO.Reschedules, s.SLO.CacheHits, s.SLO.Fallbacks, s.SLO.FallbacksSaved,
		s.SLO.GuardLevel, s.SLO.MaxGuardLevel)
	fmt.Fprintf(&b, "  lateness p50/p95/p99/max %.3f/%.3f/%.3f/%.3f  makespan p95 %.3f  avg energy %.3f\n",
		s.SLO.Lateness.P50, s.SLO.Lateness.P95, s.SLO.Lateness.P99, s.SLO.Lateness.Max,
		s.SLO.Makespan.P95, s.SLO.AvgEnergy)
	fmt.Fprintf(&b, "  miss budget burn %.2f\n", s.SLO.BudgetBurn)
	if len(s.SLO.Verdicts) == 0 {
		b.WriteString("  verdicts: (none configured)\n")
	}
	for _, v := range s.SLO.Verdicts {
		verdict := "PASS"
		if !v.Pass {
			verdict = "FAIL"
		}
		if v.Pending {
			verdict += " (pending)"
		}
		fmt.Fprintf(&b, "  verdict %-13s %.4g vs bound %.4g: %s\n",
			v.Name, v.Actual, v.Bound, verdict)
	}
	if len(s.SLO.DriftTrajectory) > 0 {
		b.WriteString("  drift trajectory:")
		for _, p := range s.SLO.DriftTrajectory {
			fmt.Fprintf(&b, " %d:%.3f", p.Instance, p.Drift)
		}
		b.WriteString("\n")
	}

	if s.Availability != nil {
		b.WriteString("\nhardware availability\n")
		fmt.Fprintf(&b, "  remaps %d (restores %d)  link outages %d\n",
			s.Availability.Remaps, s.Availability.Restores, s.Availability.LinkDowns)
		for _, pe := range s.Availability.PEs {
			state := "in service"
			if pe.Down {
				state = "DOWN"
			}
			if pe.Permanent {
				state = "DEAD (permanent)"
			}
			fmt.Fprintf(&b, "  PE %-2d outages %d  [%s]\n", pe.PE, pe.Outages, state)
		}
	}

	if s.Power != nil {
		b.WriteString("\npower budget\n")
		fmt.Fprintf(&b, "  cap %.3f  over-cap windows %d (worst mean %.3f)\n",
			s.Power.Cap, s.Power.OverWindows, s.Power.MaxWindowMean)
		fmt.Fprintf(&b, "  ladder level %d (max %d)  revocations %d  degrades %d  restores %d  sheds %d\n",
			s.Power.Level, s.Power.MaxLevel, s.Power.Revocations,
			s.Power.Degrades, s.Power.Restores, s.Power.Sheds)
		for _, name := range s.Power.ShedTenants {
			fmt.Fprintf(&b, "  tenant %-12s [SHED]\n", name)
		}
	}

	if s.Pipeline != nil {
		b.WriteString("\nreschedule pipeline latency\n")
		fmt.Fprintf(&b, "  %d spans\n", s.Pipeline.Spans)
		for _, p := range s.Pipeline.Phases {
			fmt.Fprintf(&b, "  phase %-9s runs %-5d mean %.1fus  min %.1fus  max %.1fus  total %.1fus\n",
				p.Phase, p.Count, p.Mean, p.Min, p.Max, p.Total)
		}
	}

	if s.SeriesAlerts != nil {
		b.WriteString("\nmetric rule alerts\n")
		fmt.Fprintf(&b, "  firings %d  resolved %d\n",
			s.SeriesAlerts.Firings, s.SeriesAlerts.Resolved)
		for _, r := range s.SeriesAlerts.Rules {
			state := "ok"
			if r.Firing {
				state = "FIRING"
			}
			fmt.Fprintf(&b, "  rule %-16s %s = %.4g vs %.4g  firings %d  [%s]\n",
				r.Rule, r.Metric, r.Value, r.Threshold, r.Firings, state)
		}
	}

	b.WriteString("\nhotspots (tasks by critical-path count)\n")
	if len(s.Hotspots.Tasks) == 0 {
		b.WriteString("  (no data)\n")
	}
	for i, t := range s.Hotspots.Tasks {
		name := t.Name
		if name == "" {
			name = fmt.Sprintf("task %d", t.Task)
		}
		fmt.Fprintf(&b, "  %d. %-12s critical %dx  busy %.1f  energy %.1f  slices %d\n",
			i+1, name, t.Critical, t.Busy, t.Energy, t.Slices)
	}
	b.WriteString("hotspots (PEs by busy time)\n")
	if len(s.Hotspots.PEs) == 0 {
		b.WriteString("  (no data)\n")
	}
	for i, p := range s.Hotspots.PEs {
		fmt.Fprintf(&b, "  %d. PE %-2d busy %.1f  energy %.1f  slices %d\n",
			i+1, p.PE, p.Busy, p.Energy, p.Slices)
	}
	b.WriteString("hotspots (links by busy time)\n")
	if len(s.Hotspots.Links) == 0 {
		b.WriteString("  (no data)\n")
	}
	for i, l := range s.Hotspots.Links {
		fmt.Fprintf(&b, "  %d. link %d->%d  busy %.1f  energy %.1f  transfers %d\n",
			i+1, l.From, l.To, l.Busy, l.Energy, l.Transfers)
	}

	b.WriteString("\ntimeline (reschedules, fallbacks, guard moves, alerts)\n")
	if len(s.Timeline) == 0 {
		b.WriteString("  (no data)\n")
	}
	if s.TimelineDropped > 0 {
		fmt.Fprintf(&b, "  ... %d earlier entries dropped\n", s.TimelineDropped)
	}
	for _, e := range s.Timeline {
		fmt.Fprintf(&b, "  [%4d] %-11s %s\n", e.Instance, e.Kind, e.Detail)
	}
	return b.String()
}

func probsString(ps []float64) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = fmt.Sprintf("%.3f", p)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
