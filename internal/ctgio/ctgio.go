// Package ctgio reads and writes workloads — a conditional task graph plus
// (optionally) its platform — in a line-oriented text format, so benchmarks
// can be stored, exchanged and re-run outside Go code. The format is
// deliberately TGFF-spirited and diff-friendly:
//
//	# comments and blank lines are ignored
//	ctg 4 deadline 120
//	task 0 "decide" and
//	task 1 "fast" and
//	task 2 "slow" and
//	task 3 "join" or
//	edge 0 1 comm 1.5 cond 0 0
//	edge 0 2 comm 1.5 cond 0 1
//	edge 1 3 comm 0.5
//	edge 2 3 comm 0.5
//	probs 0 0.8 0.2
//	platform 4 2
//	wcet 0 5 6
//	energy 0 5 4
//	...
//	link 0 1 4 0.1
//
// Sections must appear in order (ctg header, tasks, edges, probs, then the
// optional platform). Write produces this canonical form; Read accepts any
// whitespace and interleaving within a section.
package ctgio

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/platform"
)

// Input-hardening caps: a hostile header must not be able to drive
// allocation. Both bounds are far above any realistic workload (the paper's
// largest benchmarks are tens of tasks on a handful of PEs).
const (
	maxTasks = 1 << 20
	maxPEs   = 4096
)

// Write renders the workload in the canonical text form. p may be nil to
// write a graph-only file.
func Write(w io.Writer, g *ctg.Graph, p *platform.Platform) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# ctgdvfs workload\n")
	fmt.Fprintf(bw, "ctg %d deadline %s\n", g.NumTasks(), ftoa(g.Deadline()))
	for _, t := range g.Tasks() {
		kind := "and"
		if t.Kind == ctg.OrNode {
			kind = "or"
		}
		fmt.Fprintf(bw, "task %d %s %s\n", t.ID, strconv.Quote(t.Name), kind)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "edge %d %d comm %s", e.From, e.To, ftoa(e.CommKB))
		if e.Cond.IsConditional() {
			fmt.Fprintf(bw, " cond %d %d", e.Cond.Branch(), e.Cond.Outcome())
		}
		fmt.Fprintln(bw)
	}
	for _, fork := range g.Forks() {
		fmt.Fprintf(bw, "probs %d", fork)
		for _, v := range g.BranchProbs(fork) {
			fmt.Fprintf(bw, " %s", ftoa(v))
		}
		fmt.Fprintln(bw)
	}
	if p != nil {
		if p.NumTasks() != g.NumTasks() {
			return fmt.Errorf("ctgio: platform sized for %d tasks, graph has %d", p.NumTasks(), g.NumTasks())
		}
		fmt.Fprintf(bw, "platform %d %d\n", p.NumTasks(), p.NumPEs())
		for t := 0; t < p.NumTasks(); t++ {
			fmt.Fprintf(bw, "wcet %d", t)
			for pe := 0; pe < p.NumPEs(); pe++ {
				fmt.Fprintf(bw, " %s", ftoa(p.WCET(t, pe)))
			}
			fmt.Fprintln(bw)
			fmt.Fprintf(bw, "energy %d", t)
			for pe := 0; pe < p.NumPEs(); pe++ {
				fmt.Fprintf(bw, " %s", ftoa(p.Energy(t, pe)))
			}
			fmt.Fprintln(bw)
		}
		for i := 0; i < p.NumPEs(); i++ {
			for j := 0; j < p.NumPEs(); j++ {
				if i != j {
					fmt.Fprintf(bw, "link %d %d %s %s\n",
						i, j, ftoa(p.Bandwidth(i, j)), ftoa(p.CommEnergy(1, i, j)))
				}
			}
		}
	}
	return bw.Flush()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// parser carries the line-scanning state so errors cite line numbers.
type parser struct {
	sc   *bufio.Scanner
	line int
	toks []string
}

func (p *parser) next() bool {
	for p.sc.Scan() {
		p.line++
		text := strings.TrimSpace(p.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		p.toks = splitTokens(text)
		return true
	}
	p.toks = nil
	return false
}

// splitTokens splits a line on whitespace, keeping Go-quoted strings (which
// may contain spaces) as single tokens.
func splitTokens(line string) []string {
	var toks []string
	for line = strings.TrimSpace(line); line != ""; line = strings.TrimSpace(line) {
		if line[0] == '"' {
			if q, err := strconv.QuotedPrefix(line); err == nil {
				toks = append(toks, q)
				line = line[len(q):]
				continue
			}
		}
		end := strings.IndexFunc(line, func(r rune) bool { return r == ' ' || r == '\t' })
		if end < 0 {
			toks = append(toks, line)
			break
		}
		toks = append(toks, line[:end])
		line = line[end:]
	}
	return toks
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("ctgio: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *parser) intArg(i int) (int, error) {
	if i >= len(p.toks) {
		return 0, p.errf("missing argument %d", i)
	}
	v, err := strconv.Atoi(p.toks[i])
	if err != nil {
		return 0, p.errf("bad integer %q", p.toks[i])
	}
	return v, nil
}

func (p *parser) floatArg(i int) (float64, error) {
	if i >= len(p.toks) {
		return 0, p.errf("missing argument %d", i)
	}
	v, err := strconv.ParseFloat(p.toks[i], 64)
	if err != nil {
		return 0, p.errf("bad number %q", p.toks[i])
	}
	return v, nil
}

// finiteArg parses a float that must be finite (NaN and ±Inf are hostile in
// every numeric field of the format: costs, probabilities, deadlines).
func (p *parser) finiteArg(i int) (float64, error) {
	v, err := p.floatArg(i)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, p.errf("non-finite value %q", p.toks[i])
	}
	return v, nil
}

// costArg parses a finite, non-negative float (communication volumes,
// energies, bandwidths).
func (p *parser) costArg(i int) (float64, error) {
	v, err := p.finiteArg(i)
	if err != nil {
		return 0, err
	}
	if v < 0 {
		return 0, p.errf("negative value %q", p.toks[i])
	}
	return v, nil
}

// Read parses a workload. The returned platform is nil when the file has no
// platform section.
func Read(r io.Reader) (*ctg.Graph, *platform.Platform, error) {
	p := &parser{sc: bufio.NewScanner(r)}
	p.sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	if !p.next() {
		return nil, nil, fmt.Errorf("ctgio: empty input")
	}
	if p.toks[0] != "ctg" || len(p.toks) != 4 || p.toks[2] != "deadline" {
		return nil, nil, p.errf("want header `ctg <tasks> deadline <d>`, got %q", strings.Join(p.toks, " "))
	}
	numTasks, err := p.intArg(1)
	if err != nil {
		return nil, nil, err
	}
	if numTasks <= 0 || numTasks > maxTasks {
		return nil, nil, p.errf("task count %d out of range (1..%d)", numTasks, maxTasks)
	}
	deadline, err := p.finiteArg(3)
	if err != nil {
		return nil, nil, err
	}
	if deadline <= 0 {
		return nil, nil, p.errf("deadline must be positive, got %v", deadline)
	}

	gb := ctg.NewBuilder()
	added := 0
	havePlatform := false
	var pb *platform.Builder
	var numPEs int
	wcetRows := map[int][]float64{}
	energyRows := map[int][]float64{}

	for p.next() {
		switch p.toks[0] {
		case "task":
			id, err := p.intArg(1)
			if err != nil {
				return nil, nil, err
			}
			if id != added {
				return nil, nil, p.errf("task ids must be dense and ordered; got %d, want %d", id, added)
			}
			if added >= numTasks {
				return nil, nil, p.errf("more tasks than the %d the header declares", numTasks)
			}
			if len(p.toks) != 4 {
				return nil, nil, p.errf("want `task <id> <name> <and|or>`")
			}
			name, err := strconv.Unquote(p.toks[2])
			if err != nil {
				return nil, nil, p.errf("bad quoted name %q", p.toks[2])
			}
			var kind ctg.Kind
			switch p.toks[3] {
			case "and":
				kind = ctg.AndNode
			case "or":
				kind = ctg.OrNode
			default:
				return nil, nil, p.errf("unknown node kind %q", p.toks[3])
			}
			gb.AddTask(name, kind)
			added++
		case "edge":
			from, err := p.intArg(1)
			if err != nil {
				return nil, nil, err
			}
			to, err := p.intArg(2)
			if err != nil {
				return nil, nil, err
			}
			if len(p.toks) != 5 && len(p.toks) != 8 {
				return nil, nil, p.errf("want `edge <from> <to> comm <kb> [cond <fork> <outcome>]`")
			}
			if p.toks[3] != "comm" {
				return nil, nil, p.errf("want `comm`, got %q", p.toks[3])
			}
			if from < 0 || from >= numTasks || to < 0 || to >= numTasks {
				return nil, nil, p.errf("edge %d->%d references a task outside 0..%d", from, to, numTasks-1)
			}
			comm, err := p.costArg(4)
			if err != nil {
				return nil, nil, err
			}
			if len(p.toks) == 8 {
				if p.toks[5] != "cond" {
					return nil, nil, p.errf("want `cond`, got %q", p.toks[5])
				}
				fork, err := p.intArg(6)
				if err != nil {
					return nil, nil, err
				}
				if fork != from {
					return nil, nil, p.errf("conditional edge must be guarded by its source (%d), got %d", from, fork)
				}
				outcome, err := p.intArg(7)
				if err != nil {
					return nil, nil, err
				}
				gb.AddCondEdge(ctg.TaskID(from), ctg.TaskID(to), comm, outcome)
			} else {
				gb.AddEdge(ctg.TaskID(from), ctg.TaskID(to), comm)
			}
		case "probs":
			fork, err := p.intArg(1)
			if err != nil {
				return nil, nil, err
			}
			if fork < 0 || fork >= numTasks {
				return nil, nil, p.errf("probs fork %d outside 0..%d", fork, numTasks-1)
			}
			probs := make([]float64, 0, len(p.toks)-2)
			for i := 2; i < len(p.toks); i++ {
				v, err := p.finiteArg(i)
				if err != nil {
					return nil, nil, err
				}
				if v < 0 || v > 1 {
					return nil, nil, p.errf("probability %v outside [0,1]", v)
				}
				probs = append(probs, v)
			}
			if len(probs) == 0 {
				return nil, nil, p.errf("probs needs at least one value")
			}
			gb.SetBranchProbs(ctg.TaskID(fork), probs)
		case "platform":
			pt, err := p.intArg(1)
			if err != nil {
				return nil, nil, err
			}
			numPEs, err = p.intArg(2)
			if err != nil {
				return nil, nil, err
			}
			if pt != numTasks {
				return nil, nil, p.errf("platform sized for %d tasks, graph header says %d", pt, numTasks)
			}
			if numPEs <= 0 || numPEs > maxPEs {
				return nil, nil, p.errf("PE count %d out of range (1..%d)", numPEs, maxPEs)
			}
			if pb != nil {
				return nil, nil, p.errf("duplicate platform header")
			}
			pb = platform.NewBuilder(pt, numPEs)
			havePlatform = true
		case "wcet", "energy":
			if pb == nil {
				return nil, nil, p.errf("%s before platform header", p.toks[0])
			}
			task, err := p.intArg(1)
			if err != nil {
				return nil, nil, err
			}
			if task < 0 || task >= numTasks {
				return nil, nil, p.errf("%s task %d outside 0..%d", p.toks[0], task, numTasks-1)
			}
			if len(p.toks) != 2+numPEs {
				return nil, nil, p.errf("want %d values, got %d", numPEs, len(p.toks)-2)
			}
			vals := make([]float64, numPEs)
			for i := range vals {
				v, err := p.costArg(2 + i)
				if err != nil {
					return nil, nil, err
				}
				vals[i] = v
			}
			// wcet and energy rows arrive separately; stage them and
			// combine after parsing.
			if p.toks[0] == "wcet" {
				wcetRows[task] = vals
			} else {
				energyRows[task] = vals
			}
		case "link":
			if pb == nil {
				return nil, nil, p.errf("link before platform header")
			}
			i, err := p.intArg(1)
			if err != nil {
				return nil, nil, err
			}
			j, err := p.intArg(2)
			if err != nil {
				return nil, nil, err
			}
			bw, err := p.costArg(3)
			if err != nil {
				return nil, nil, err
			}
			en, err := p.costArg(4)
			if err != nil {
				return nil, nil, err
			}
			pb.SetLink(i, j, bw, en)
		default:
			return nil, nil, p.errf("unknown directive %q", p.toks[0])
		}
	}
	if err := p.sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("ctgio: %w", err)
	}
	if added != numTasks {
		return nil, nil, fmt.Errorf("ctgio: header declares %d tasks, file defines %d", numTasks, added)
	}
	g, err := gb.Build(deadline)
	if err != nil {
		return nil, nil, fmt.Errorf("ctgio: %w", err)
	}
	if !havePlatform {
		return g, nil, nil
	}
	for t := 0; t < numTasks; t++ {
		w, okW := wcetRows[t]
		e, okE := energyRows[t]
		if !okW || !okE {
			return nil, nil, fmt.Errorf("ctgio: task %d missing wcet or energy row", t)
		}
		pb.SetTask(t, w, e)
	}
	pl, err := pb.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("ctgio: %w", err)
	}
	return g, pl, nil
}

// WriteFile writes the workload to a file.
func WriteFile(path string, g *ctg.Graph, p *platform.Platform) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, g, p); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a workload from a file.
func ReadFile(path string) (*ctg.Graph, *platform.Platform, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return Read(f)
}
