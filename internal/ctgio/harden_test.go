package ctgio

import (
	"strings"
	"testing"
)

// TestHostileInputsRejected drives the parser with inputs that used to slip
// past validation (non-finite numbers, negative indices, absurd counts):
// every one must come back as an error — no panic, no over-allocation, and
// definitely no accepted graph.
func TestHostileInputsRejected(t *testing.T) {
	cases := map[string]string{
		"inf deadline":      "ctg 1 deadline Inf\ntask 0 \"a\" and\n",
		"nan deadline":      "ctg 1 deadline NaN\ntask 0 \"a\" and\n",
		"negative deadline": "ctg 1 deadline -5\ntask 0 \"a\" and\n",
		"nan comm":          "ctg 2 deadline 5\ntask 0 \"a\" and\ntask 1 \"b\" and\nedge 0 1 comm NaN\n",
		"inf comm":          "ctg 2 deadline 5\ntask 0 \"a\" and\ntask 1 \"b\" and\nedge 0 1 comm Inf\n",
		"negative comm":     "ctg 2 deadline 5\ntask 0 \"a\" and\ntask 1 \"b\" and\nedge 0 1 comm -1\n",
		"edge out of range": "ctg 2 deadline 5\ntask 0 \"a\" and\ntask 1 \"b\" and\nedge 0 9 comm 1\n",
		"edge negative":     "ctg 2 deadline 5\ntask 0 \"a\" and\ntask 1 \"b\" and\nedge -3 1 comm 1\n",
		"negative fork": "ctg 3 deadline 9\ntask 0 \"a\" and\ntask 1 \"b\" and\ntask 2 \"c\" or\n" +
			"edge 0 1 comm 1 cond 0 0\nedge 0 2 comm 1 cond 0 1\nprobs -1 0.5 0.5\n",
		"nan prob": "ctg 3 deadline 9\ntask 0 \"a\" and\ntask 1 \"b\" and\ntask 2 \"c\" or\n" +
			"edge 0 1 comm 1 cond 0 0\nedge 0 2 comm 1 cond 0 1\nprobs 0 NaN NaN\n",
		"prob above one": "ctg 3 deadline 9\ntask 0 \"a\" and\ntask 1 \"b\" and\ntask 2 \"c\" or\n" +
			"edge 0 1 comm 1 cond 0 0\nedge 0 2 comm 1 cond 0 1\nprobs 0 -0.5 1.5\n",
		"huge task count":      "ctg 99999999999 deadline 5\ntask 0 \"a\" and\n",
		"negative task count":  "ctg -7 deadline 5\n",
		"zero task count":      "ctg 0 deadline 5\n",
		"huge PE count":        "ctg 1 deadline 5\ntask 0 \"a\" and\nplatform 1 999999999\n",
		"negative PE count":    "ctg 1 deadline 5\ntask 0 \"a\" and\nplatform 1 -3\n",
		"duplicate platform":   "ctg 1 deadline 5\ntask 0 \"a\" and\nplatform 1 1\nplatform 1 1\nwcet 0 1\nenergy 0 1\n",
		"wcet task negative":   "ctg 1 deadline 5\ntask 0 \"a\" and\nplatform 1 1\nwcet -4 1\nenergy 0 1\n",
		"wcet task huge":       "ctg 1 deadline 5\ntask 0 \"a\" and\nplatform 1 1\nwcet 4 1\nenergy 0 1\n",
		"nan wcet":             "ctg 1 deadline 5\ntask 0 \"a\" and\nplatform 1 1\nwcet 0 NaN\nenergy 0 1\n",
		"negative energy":      "ctg 1 deadline 5\ntask 0 \"a\" and\nplatform 1 1\nwcet 0 1\nenergy 0 -2\n",
		"inf bandwidth":        "ctg 1 deadline 5\ntask 0 \"a\" and\nplatform 1 2\nwcet 0 1 1\nenergy 0 1 1\nlink 0 1 Inf 0.1\n",
		"link PE out of range": "ctg 1 deadline 5\ntask 0 \"a\" and\nplatform 1 2\nwcet 0 1 1\nenergy 0 1 1\nlink 0 5 1 0.1\n",
		"extra tasks":          "ctg 1 deadline 5\ntask 0 \"a\" and\ntask 1 \"b\" and\n",
	}
	for name, input := range cases {
		if _, _, err := Read(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted hostile input", name)
		}
	}
}

// TestValidWorkloadStillAccepted pins the happy path after hardening.
func TestValidWorkloadStillAccepted(t *testing.T) {
	input := "ctg 3 deadline 9\ntask 0 \"a\" and\ntask 1 \"b\" and\ntask 2 \"c\" or\n" +
		"edge 0 1 comm 1 cond 0 0\nedge 0 2 comm 1 cond 0 1\nprobs 0 0.25 0.75\n" +
		"platform 3 2\nwcet 0 1 2\nenergy 0 1 1\nwcet 1 1 2\nenergy 1 1 1\nwcet 2 1 2\nenergy 2 1 1\n" +
		"link 0 1 4 0.1\nlink 1 0 4 0.1\n"
	g, p, err := Read(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 3 || p == nil || p.NumPEs() != 2 {
		t.Fatalf("parsed shape wrong: %d tasks, platform %v", g.NumTasks(), p)
	}
}
