package ctgio

import (
	"bytes"
	"strings"
	"testing"

	"ctgdvfs/internal/tgff"
)

// FuzzRead feeds the parser arbitrary inputs: it must never panic, and any
// input it accepts must round-trip through Write/Read to an equivalent
// workload. Run with `go test -fuzz FuzzRead ./internal/ctgio` for a real
// fuzzing session; the seed corpus alone runs as a normal test.
func FuzzRead(f *testing.F) {
	// Seed corpus: a valid workload, a graph-only file, and a pile of
	// near-misses.
	g, p, err := tgff.Generate(tgff.Config{Seed: 5, Nodes: 10, PEs: 2, Branches: 1})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, g, p); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	var gOnly bytes.Buffer
	if err := Write(&gOnly, g, nil); err != nil {
		f.Fatal(err)
	}
	f.Add(gOnly.String())
	f.Add("")
	f.Add("ctg 1 deadline 5\ntask 0 \"a\" and\n")
	f.Add("ctg 1 deadline 5\ntask 0 \"a\" and\nplatform 1 1\nwcet 0 1\nenergy 0 1\n")
	f.Add("ctg 2 deadline x\n")
	f.Add("task 0 \"a\" and\n")
	f.Add("ctg 1 deadline 5\ntask 0 \"unterminated quote and\n")
	f.Add("ctg 1 deadline 5\n# only a comment\n")
	f.Add(strings.Repeat("ctg 1 deadline 5\n", 3))
	f.Add("ctg 1 deadline 5\ntask 0 \"a\" and\nedge 0 0 comm 1\n")
	f.Add("ctg 3 deadline 9\ntask 0 \"a\" and\ntask 1 \"b\" and\ntask 2 \"c\" or\nedge 0 1 comm 1 cond 0 0\nedge 0 2 comm 1 cond 0 1\nprobs 0 0.25 0.75\n")
	// Hostile numerics and counts: non-finite probabilities, deadlines and
	// costs, negative indices, and absurd header sizes that must not drive
	// allocation.
	f.Add("ctg 1 deadline Inf\ntask 0 \"a\" and\n")
	f.Add("ctg 1 deadline NaN\ntask 0 \"a\" and\n")
	f.Add("ctg 1 deadline -5\ntask 0 \"a\" and\n")
	f.Add("ctg 2 deadline 5\ntask 0 \"a\" and\ntask 1 \"b\" and\nedge 0 1 comm NaN\n")
	f.Add("ctg 2 deadline 5\ntask 0 \"a\" and\ntask 1 \"b\" and\nedge 0 1 comm -1\n")
	f.Add("ctg 2 deadline 5\ntask 0 \"a\" and\ntask 1 \"b\" and\nedge 0 1 comm +Inf\n")
	f.Add("ctg 3 deadline 9\ntask 0 \"a\" and\ntask 1 \"b\" and\ntask 2 \"c\" or\nedge 0 1 comm 1 cond 0 0\nedge 0 2 comm 1 cond 0 1\nprobs 0 NaN NaN\n")
	f.Add("ctg 3 deadline 9\ntask 0 \"a\" and\ntask 1 \"b\" and\ntask 2 \"c\" or\nedge 0 1 comm 1 cond 0 0\nedge 0 2 comm 1 cond 0 1\nprobs -1 0.5 0.5\n")
	f.Add("ctg 3 deadline 9\ntask 0 \"a\" and\ntask 1 \"b\" and\ntask 2 \"c\" or\nedge 0 1 comm 1 cond 0 0\nedge 0 2 comm 1 cond 0 1\nprobs 0 -0.5 1.5\n")
	f.Add("ctg 999999999 deadline 5\ntask 0 \"a\" and\n")
	f.Add("ctg -7 deadline 5\n")
	f.Add("ctg 1 deadline 5\ntask 0 \"a\" and\nplatform 1 999999999\n")
	f.Add("ctg 1 deadline 5\ntask 0 \"a\" and\nplatform 1 -3\n")
	f.Add("ctg 1 deadline 5\ntask 0 \"a\" and\nplatform 1 1\nwcet -4 1\nenergy 0 1\n")
	f.Add("ctg 1 deadline 5\ntask 0 \"a\" and\nplatform 1 1\nwcet 0 NaN\nenergy 0 1\n")
	f.Add("ctg 1 deadline 5\ntask 0 \"a\" and\nplatform 1 1\nwcet 0 1\nenergy 0 -2\n")
	f.Add("ctg 1 deadline 5\ntask 0 \"a\" and\nplatform 1 2\nwcet 0 1 1\nenergy 0 1 1\nlink 0 1 Inf 0.1\n")
	f.Add("ctg 1 deadline 5\ntask 0 \"a\" and\nplatform 1 2\nwcet 0 1 1\nenergy 0 1 1\nlink 0 5 1 0.1\n")
	f.Add("ctg 2 deadline 5\ntask 0 \"a\" and\ntask 1 \"b\" and\nedge 0 -9 comm 1\n")
	f.Add("ctg 1 deadline 5\ntask 0 \"a\" and\ntask 1 \"b\" and\n")

	f.Fuzz(func(t *testing.T, input string) {
		g1, p1, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted input must survive a canonical round trip.
		var out bytes.Buffer
		if err := Write(&out, g1, p1); err != nil {
			t.Fatalf("Write after accept: %v", err)
		}
		g2, p2, err := Read(&out)
		if err != nil {
			t.Fatalf("re-Read of canonical form: %v\ncanonical:\n%s", err, out.String())
		}
		if g2.NumTasks() != g1.NumTasks() || g2.NumEdges() != g1.NumEdges() {
			t.Fatal("round trip changed the graph shape")
		}
		if (p1 == nil) != (p2 == nil) {
			t.Fatal("round trip changed platform presence")
		}
	})
}
