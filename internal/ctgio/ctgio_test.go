package ctgio

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"ctgdvfs/internal/apps/cruise"
	"ctgdvfs/internal/apps/mpeg"
	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/tgff"
)

func roundTrip(t *testing.T, g *ctg.Graph, p *platform.Platform) (*ctg.Graph, *platform.Platform) {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, g, p); err != nil {
		t.Fatalf("Write: %v", err)
	}
	g2, p2, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v\ninput:\n%s", err, buf.String())
	}
	return g2, p2
}

func assertGraphsEqual(t *testing.T, g, g2 *ctg.Graph) {
	t.Helper()
	if g2.NumTasks() != g.NumTasks() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("shape mismatch: %d/%d tasks, %d/%d edges",
			g.NumTasks(), g2.NumTasks(), g.NumEdges(), g2.NumEdges())
	}
	if g2.Deadline() != g.Deadline() {
		t.Fatalf("deadline %v != %v", g2.Deadline(), g.Deadline())
	}
	for i, task := range g.Tasks() {
		if g2.Task(ctg.TaskID(i)) != task {
			t.Fatalf("task %d mismatch: %+v vs %+v", i, task, g2.Task(ctg.TaskID(i)))
		}
	}
	for i := range g.Edges() {
		if g.Edge(i) != g2.Edge(i) {
			t.Fatalf("edge %d mismatch: %+v vs %+v", i, g.Edge(i), g2.Edge(i))
		}
	}
	for _, fork := range g.Forks() {
		a, b := g.BranchProbs(fork), g2.BranchProbs(fork)
		for k := range a {
			if math.Abs(a[k]-b[k]) > 1e-12 {
				t.Fatalf("fork %d probs mismatch: %v vs %v", fork, a, b)
			}
		}
	}
}

func assertPlatformsEqual(t *testing.T, p, p2 *platform.Platform) {
	t.Helper()
	if p2.NumTasks() != p.NumTasks() || p2.NumPEs() != p.NumPEs() {
		t.Fatal("platform shape mismatch")
	}
	for task := 0; task < p.NumTasks(); task++ {
		for pe := 0; pe < p.NumPEs(); pe++ {
			if p.WCET(task, pe) != p2.WCET(task, pe) || p.Energy(task, pe) != p2.Energy(task, pe) {
				t.Fatalf("task %d pe %d cost mismatch", task, pe)
			}
		}
	}
	for i := 0; i < p.NumPEs(); i++ {
		for j := 0; j < p.NumPEs(); j++ {
			if i == j {
				continue
			}
			if p.Bandwidth(i, j) != p2.Bandwidth(i, j) {
				t.Fatalf("link %d->%d bandwidth mismatch", i, j)
			}
			if math.Abs(p.CommEnergy(1, i, j)-p2.CommEnergy(1, i, j)) > 1e-12 {
				t.Fatalf("link %d->%d energy mismatch", i, j)
			}
		}
	}
}

func TestRoundTripMPEG(t *testing.T) {
	g, p, err := mpeg.Build()
	if err != nil {
		t.Fatal(err)
	}
	g2, p2 := roundTrip(t, g, p)
	assertGraphsEqual(t, g, g2)
	assertPlatformsEqual(t, p, p2)
}

func TestRoundTripCruise(t *testing.T) {
	g, p, err := cruise.Build()
	if err != nil {
		t.Fatal(err)
	}
	g2, p2 := roundTrip(t, g, p)
	assertGraphsEqual(t, g, g2)
	assertPlatformsEqual(t, p, p2)
}

func TestRoundTripRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		cat := tgff.ForkJoin
		if seed%2 == 1 {
			cat = tgff.Flat
		}
		g, p, err := tgff.Generate(tgff.Config{
			Seed: seed, Nodes: 15 + int(seed), PEs: 2 + int(seed%3),
			Branches: int(seed % 4), Category: cat,
		})
		if err != nil {
			t.Fatal(err)
		}
		g2, p2 := roundTrip(t, g, p)
		assertGraphsEqual(t, g, g2)
		assertPlatformsEqual(t, p, p2)
	}
}

func TestGraphOnlyFile(t *testing.T) {
	g, _, err := tgff.Generate(tgff.Config{Seed: 3, Nodes: 12, PEs: 2, Branches: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "platform") {
		t.Fatal("graph-only file must not contain a platform section")
	}
	g2, p2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != nil {
		t.Fatal("want nil platform")
	}
	assertGraphsEqual(t, g, g2)
}

func TestReadFileWriteFile(t *testing.T) {
	g, p, err := tgff.Generate(tgff.Config{Seed: 8, Nodes: 14, PEs: 3, Branches: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "workload.ctg")
	if err := WriteFile(path, g, p); err != nil {
		t.Fatal(err)
	}
	g2, p2, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, g2)
	assertPlatformsEqual(t, p, p2)
	if _, _, err := ReadFile(filepath.Join(t.TempDir(), "missing.ctg")); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestQuotedNamesSurvive(t *testing.T) {
	b := ctg.NewBuilder()
	b.AddTask(`weird "name" with spaces`, ctg.AndNode)
	x := b.AddTask("täsk-ünïcode", ctg.OrNode)
	b.AddEdge(0, x, 1)
	g, err := b.Build(10)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := roundTrip(t, g, nil)
	assertGraphsEqual(t, g, g2)
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, input string
	}{
		{"empty", ""},
		{"bad header", "nonsense 3\n"},
		{"bad task count", "ctg x deadline 5\n"},
		{"bad deadline", "ctg 1 deadline zzz\n"},
		{"task out of order", "ctg 2 deadline 5\ntask 1 \"b\" and\n"},
		{"bad kind", "ctg 1 deadline 5\ntask 0 \"a\" maybe\n"},
		{"unquoted name", "ctg 1 deadline 5\ntask 0 a and\n"},
		{"unknown directive", "ctg 1 deadline 5\ntask 0 \"a\" and\nfrobnicate 1\n"},
		{"edge arity", "ctg 2 deadline 5\ntask 0 \"a\" and\ntask 1 \"b\" and\nedge 0 1\n"},
		{"edge missing comm kw", "ctg 2 deadline 5\ntask 0 \"a\" and\ntask 1 \"b\" and\nedge 0 1 xx 2\n"},
		{"foreign cond fork", "ctg 3 deadline 5\ntask 0 \"a\" and\ntask 1 \"b\" and\ntask 2 \"c\" and\nedge 0 1 comm 1 cond 2 0\n"},
		{"task count mismatch", "ctg 3 deadline 5\ntask 0 \"a\" and\n"},
		{"probs no values", "ctg 1 deadline 5\ntask 0 \"a\" and\nprobs 0\n"},
		{"wcet before platform", "ctg 1 deadline 5\ntask 0 \"a\" and\nwcet 0 1\n"},
		{"platform task mismatch", "ctg 1 deadline 5\ntask 0 \"a\" and\nplatform 2 1\n"},
		{"wcet arity", "ctg 1 deadline 5\ntask 0 \"a\" and\nplatform 1 2\nwcet 0 1\n"},
		{"missing energy row", "ctg 1 deadline 5\ntask 0 \"a\" and\nplatform 1 1\nwcet 0 1\n"},
		{"link before platform", "ctg 1 deadline 5\ntask 0 \"a\" and\nlink 0 1 1 0\n"},
		{"cycle", "ctg 2 deadline 5\ntask 0 \"a\" and\ntask 1 \"b\" and\nedge 0 1 comm 1\nedge 1 0 comm 1\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, _, err := Read(strings.NewReader(c.input)); err == nil {
				t.Fatalf("want parse error for:\n%s", c.input)
			}
		})
	}
}

func TestCommentsAndWhitespaceTolerated(t *testing.T) {
	input := `
# a comment
   ctg 2 deadline 50

task 0 "a" and
  # interleaved comment
task 1 "b" or
edge    0   1   comm 2.5
`
	g, p, err := Read(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if p != nil {
		t.Fatal("no platform expected")
	}
	if g.NumTasks() != 2 || g.Deadline() != 50 || g.Edge(0).CommKB != 2.5 {
		t.Fatalf("parsed graph wrong: %v", g)
	}
}
