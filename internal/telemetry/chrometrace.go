package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ChromeTrace converts recorded event streams into the Chrome trace-event
// JSON format, loadable in chrome://tracing and https://ui.perfetto.dev: one
// process per run, one thread row per PE (plus one per interconnect link),
// task executions as duration slices with speed/energy/overrun args, comm
// transfers as slices on their link row with flow arrows from producer to
// consumer task, re-schedules / breaker trips / fallback activations as
// process-scoped instant events, and drift / guard level / energy as counter
// tracks. Consecutive CTG instances are laid out back to back on a shared
// timeline (one abstract schedule time unit = 1 µs in the trace).
//
// The export is deterministic: events are grouped by instance id and sorted
// with explicit tie-breakers, and all JSON is rendered from ordered structs —
// no map iteration — so identical inputs produce byte-identical files (the
// golden-file test depends on this).
type ChromeTrace struct {
	events []chromeEvent
}

// NewChromeTrace returns an empty exporter.
func NewChromeTrace() *ChromeTrace { return &ChromeTrace{} }

// chromeEvent is one trace-event record. Field order is the serialization
// order (encoding/json preserves struct order), keeping output stable.
type chromeEvent struct {
	Name  string      `json:"name,omitempty"`
	Cat   string      `json:"cat,omitempty"`
	Ph    string      `json:"ph"`
	Ts    float64     `json:"ts"`
	Dur   float64     `json:"dur,omitempty"`
	Pid   int         `json:"pid"`
	Tid   int         `json:"tid"`
	ID    string      `json:"id,omitempty"`
	Scope string      `json:"s,omitempty"`
	BP    string      `json:"bp,omitempty"`
	Args  *chromeArgs `json:"args,omitempty"`
}

// chromeArgs is the ordered argument payload of a trace event.
type chromeArgs struct {
	Label    string   `json:"name,omitempty"` // metadata events: row name
	Task     int      `json:"task,omitempty"`
	Scenario int      `json:"scenario,omitempty"`
	Speed    float64  `json:"speed,omitempty"`
	Overrun  float64  `json:"overrun,omitempty"`
	Energy   *float64 `json:"energy,omitempty"`
	Makespan float64  `json:"makespan,omitempty"`
	Lateness float64  `json:"lateness,omitempty"`
	Met      *bool    `json:"met,omitempty"`
	Reason   string   `json:"reason,omitempty"`
	CacheHit *bool    `json:"cache_hit,omitempty"`
	Calls    int      `json:"calls,omitempty"`
	Level    *int     `json:"level,omitempty"`
	Drift    *float64 `json:"drift,omitempty"`
	Value    *float64 `json:"value,omitempty"`
}

func fptr(v float64) *float64 { return &v }
func bptr(v bool) *bool       { return &v }
func iptr(v int) *int         { return &v }

// instanceGroup is the per-instance slice of a recorded stream.
type instanceGroup struct {
	id     int
	events []Event
}

// groupByInstance buckets a stream by instance id, ascending. Within a
// group the original stream order is preserved (it is deterministic for
// single-manager runs; parallel replays are serialized per instance by id).
func groupByInstance(evs []Event) []instanceGroup {
	byID := make(map[int][]Event)
	var ids []int
	for _, e := range evs {
		if _, ok := byID[e.Instance]; !ok {
			ids = append(ids, e.Instance)
		}
		byID[e.Instance] = append(byID[e.Instance], e)
	}
	sort.Ints(ids)
	groups := make([]instanceGroup, 0, len(ids))
	for _, id := range ids {
		groups = append(groups, instanceGroup{id: id, events: byID[id]})
	}
	return groups
}

// AddRun lays one recorded run (one runtime's event stream) onto the trace
// as process pid. Instances are placed back to back; a fallback re-run is
// placed after the failed primary replay of its instance, mirroring the
// sequential re-execution it models.
func (ct *ChromeTrace) AddRun(name string, pid int, evs []Event) {
	ct.events = append(ct.events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: pid, Args: &chromeArgs{Label: name},
	})

	// Rows: one thread per PE seen in any slice, then one per link pair.
	maxPE := -1
	linkSet := make(map[[2]int]bool)
	for _, e := range evs {
		switch e.Kind {
		case KindTaskSlice:
			if e.PE > maxPE {
				maxPE = e.PE
			}
		case KindCommSlice:
			if e.PE > maxPE {
				maxPE = e.PE
			}
			if e.PE2 > maxPE {
				maxPE = e.PE2
			}
			linkSet[[2]int{e.PE, e.PE2}] = true
		}
	}
	links := make([][2]int, 0, len(linkSet))
	for l := range linkSet {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i][0] != links[j][0] {
			return links[i][0] < links[j][0]
		}
		return links[i][1] < links[j][1]
	})
	linkTid := make(map[[2]int]int, len(links))
	for i, l := range links {
		linkTid[l] = maxPE + 1 + i
	}
	for pe := 0; pe <= maxPE; pe++ {
		ct.events = append(ct.events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: pe,
			Args: &chromeArgs{Label: fmt.Sprintf("PE %d", pe)},
		})
	}
	for _, l := range links {
		ct.events = append(ct.events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: linkTid[l],
			Args: &chromeArgs{Label: fmt.Sprintf("link %d→%d", l[0], l[1])},
		})
	}

	base := 0.0
	for _, grp := range groupByInstance(evs) {
		// Span of the primary replay and of an (optional) fallback re-run.
		primaryEnd, fallbackEnd := 0.0, 0.0
		for _, e := range grp.events {
			if e.Kind != KindTaskSlice && e.Kind != KindCommSlice {
				continue
			}
			if e.Phase == PhaseFallback {
				if e.End > fallbackEnd {
					fallbackEnd = e.End
				}
			} else if e.End > primaryEnd {
				primaryEnd = e.End
			}
		}
		span := primaryEnd + fallbackEnd
		instEnd := base + span

		for _, e := range grp.events {
			off := base
			cat := "task"
			if e.Phase == PhaseFallback {
				off = base + primaryEnd
				cat = "fallback"
			}
			switch e.Kind {
			case KindTaskSlice:
				args := &chromeArgs{Task: e.Task, Scenario: e.Scenario, Speed: e.Speed}
				if e.Factor > 1 {
					args.Overrun = e.Factor
				}
				if e.Energy != 0 {
					args.Energy = fptr(e.Energy)
				}
				ct.events = append(ct.events, chromeEvent{
					Name: e.Name, Cat: cat, Ph: "X",
					Ts: off + e.Start, Dur: e.End - e.Start, Pid: pid, Tid: e.PE,
					Args: args,
				})
			case KindCommSlice:
				if cat == "task" {
					cat = "comm"
				}
				// The phase is part of the id: a fallback re-run replays the
				// same edges as its failed primary, and flow endpoints must
				// pair within one replay.
				flowID := fmt.Sprintf("%s-i%d-e%d-%s", name, grp.id, e.Edge, cat)
				label := fmt.Sprintf("%d→%d", e.Task, e.Task2)
				ct.events = append(ct.events,
					chromeEvent{
						Name: label, Cat: cat, Ph: "X",
						Ts: off + e.Start, Dur: e.End - e.Start,
						Pid: pid, Tid: linkTid[[2]int{e.PE, e.PE2}],
					},
					// Flow arrow: producer task row → consumer task row.
					chromeEvent{
						Name: label, Cat: "flow", Ph: "s", ID: flowID,
						Ts: off + e.Start, Pid: pid, Tid: e.PE,
					},
					chromeEvent{
						Name: label, Cat: "flow", Ph: "f", BP: "e", ID: flowID,
						Ts: off + e.End, Pid: pid, Tid: e.PE2,
					},
				)
			case KindReschedule:
				ct.events = append(ct.events, chromeEvent{
					Name: "reschedule (" + e.Reason + ")", Cat: "decision",
					Ph: "i", Scope: "p", Ts: instEnd, Pid: pid, Tid: 0,
					Args: &chromeArgs{Reason: e.Reason, CacheHit: bptr(e.CacheHit), Calls: e.Calls},
				})
			case KindFallback:
				ct.events = append(ct.events, chromeEvent{
					Name: "fallback", Cat: "decision",
					Ph: "i", Scope: "p", Ts: base + primaryEnd, Pid: pid, Tid: 0,
					Args: &chromeArgs{Makespan: e.Makespan2, Met: bptr(e.Met)},
				})
			case KindGuardLevel:
				ct.events = append(ct.events,
					chromeEvent{
						Name: fmt.Sprintf("guard level %d→%d", e.Level2, e.Level),
						Cat:  "decision",
						Ph:   "i", Scope: "p", Ts: instEnd, Pid: pid, Tid: 0,
						Args: &chromeArgs{Level: iptr(e.Level)},
					},
					chromeEvent{
						Name: "guard_level", Ph: "C", Ts: instEnd, Pid: pid, Tid: 0,
						Args: &chromeArgs{Level: iptr(e.Level)},
					},
				)
			case KindHealthAlert:
				ct.events = append(ct.events, chromeEvent{
					Name: "health alert (" + e.Reason + ")", Cat: "health",
					Ph: "i", Scope: "p", Ts: instEnd, Pid: pid, Tid: 0,
					Args: &chromeArgs{Reason: e.Reason, Value: fptr(e.Value)},
				})
			case KindInstanceFinish:
				ct.events = append(ct.events,
					chromeEvent{
						Name: "drift", Ph: "C", Ts: instEnd, Pid: pid, Tid: 0,
						Args: &chromeArgs{Drift: fptr(e.Drift)},
					},
					chromeEvent{
						Name: "energy", Ph: "C", Ts: instEnd, Pid: pid, Tid: 0,
						Args: &chromeArgs{Value: fptr(e.Energy)},
					},
				)
			}
		}
		// One-unit gap keeps instance boundaries visible when zoomed out.
		base = instEnd + 1
	}
}

// chromeFile is the top-level JSON object.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Write renders the trace as Chrome trace-event JSON.
func (ct *ChromeTrace) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeFile{TraceEvents: ct.events, DisplayTimeUnit: "ms"})
}

// Len returns the number of trace events staged so far.
func (ct *ChromeTrace) Len() int { return len(ct.events) }
