package telemetry

import (
	"sync"
	"testing"
)

// TestGaugeSetMaxConcurrent hammers SetMax from several writers and checks
// the CAS loop converges on the global maximum (run under -race to validate
// the synchronization itself).
func TestGaugeSetMaxConcurrent(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("max")
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				g.SetMax(float64(w*perWorker + i))
			}
		}(w)
	}
	wg.Wait()
	want := float64(workers*perWorker - 1)
	if got := g.Value(); got != want {
		t.Fatalf("concurrent SetMax converged on %g, want %g", got, want)
	}
}

// TestHistogramSnapshotDuringObserve interleaves Snapshot reads with
// concurrent writers; every observation must land and no intermediate
// snapshot may go backwards in count.
func TestHistogramSnapshotDuringObserve(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", 0, 100, 20)
	const workers, perWorker = 4, 2000
	var wg sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(i % 100))
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(done)
	}()
	var prev uint64
	for {
		snap := h.Snapshot()
		if snap.Count < prev {
			t.Errorf("snapshot count went backwards: %d after %d", snap.Count, prev)
			break
		}
		prev = snap.Count
		select {
		case <-done:
			if got := h.Snapshot().Count; got != workers*perWorker {
				t.Fatalf("final count %d, want %d", got, workers*perWorker)
			}
			return
		default:
		}
	}
}

// TestMirrorForwardingConcurrent checks mirror forwarding is safe when two
// mirrors of one parent write concurrently — the campaign topology.
func TestMirrorForwardingConcurrent(t *testing.T) {
	parent := NewRegistry()
	const workers, perWorker = 4, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		m := NewMirrorRegistry(parent)
		c := m.Counter("c")
		g := m.Gauge("g")
		h := m.Histogram("h", 0, 100, 10)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.SetMax(float64(i))
				h.Observe(float64(i % 100))
			}
		}()
	}
	wg.Wait()
	if got := parent.Counter("c").Value(); got != workers*perWorker {
		t.Fatalf("parent counter %d, want %d", got, workers*perWorker)
	}
	if got := parent.Gauge("g").Value(); got != perWorker-1 {
		t.Fatalf("parent max gauge %g, want %d", got, perWorker-1)
	}
	if got := parent.Histogram("h", 0, 100, 10).Snapshot().Count; got != workers*perWorker {
		t.Fatalf("parent histogram count %d, want %d", got, workers*perWorker)
	}
}
