package telemetry

import (
	"bytes"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestMemoryRecorder(t *testing.T) {
	r := NewMemoryRecorder()
	r.Record(Event{Kind: KindInstanceStart, Instance: 0})
	r.Record(Event{Kind: KindTaskSlice, Instance: 0, Task: 3, PE: 1, Start: 1, End: 2})
	r.Record(Event{Kind: KindInstanceFinish, Instance: 0, Energy: 12.5, Met: true})
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	byKind := r.CountByKind()
	if byKind[KindTaskSlice] != 1 || byKind[KindInstanceStart] != 1 {
		t.Fatalf("counts: %v", byKind)
	}
	evs := r.Events()
	evs[0].Kind = KindFallback // snapshot must be a copy
	if r.Events()[0].Kind != KindInstanceStart {
		t.Fatal("Events() exposed internal storage")
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("reset failed")
	}
}

func TestMemoryRecorderConcurrent(t *testing.T) {
	r := NewMemoryRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(Event{Kind: KindTaskSlice, Instance: w, Task: i})
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("len = %d, want 800", r.Len())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r := NewJSONLRecorder(&buf)
	in := []Event{
		{Kind: KindInstanceStart, Instance: 7, Scenario: 2},
		{Kind: KindTaskSlice, Instance: 7, Task: 1, Name: "idct", PE: 2, Start: 0.5, End: 1.25, Speed: 0.8},
		{Kind: KindReschedule, Instance: 7, Reason: "drift", CacheHit: true, Key: "ab12", Calls: 3},
		{Kind: KindFallback, Instance: 7, Met: true, Makespan: 90, Makespan2: 120, Phase: PhaseFallback},
	}
	for _, e := range in {
		r.Record(e)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(in) {
		t.Fatalf("wrote %d lines, want %d", lines, len(in))
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if !reflect.DeepEqual(out[i], in[i]) {
			t.Errorf("event %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestMultiAndFilterRecorder(t *testing.T) {
	a, b := NewMemoryRecorder(), NewMemoryRecorder()
	multi := MultiRecorder{a, NewFilterRecorder(b, KindReschedule)}
	multi.Record(Event{Kind: KindTaskSlice})
	multi.Record(Event{Kind: KindReschedule, Reason: "drift"})
	if a.Len() != 2 {
		t.Fatalf("multi sink a got %d events, want 2", a.Len())
	}
	if b.Len() != 1 || b.Events()[0].Kind != KindReschedule {
		t.Fatalf("filtered sink got %v", b.Events())
	}
}

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("runtime.calls")
	c.Inc()
	c.Add(4)
	if reg.Counter("runtime.calls") != c {
		t.Fatal("counter handle not cached")
	}
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	c.Add(-1)
	if c.Value() != 4 {
		t.Fatalf("counter after Add(-1) = %d, want 4", c.Value())
	}

	g := reg.Gauge("runtime.guard_level")
	g.Set(2)
	g.SetMax(1) // must not lower
	if g.Value() != 2 {
		t.Fatalf("gauge = %v, want 2", g.Value())
	}
	g.SetMax(3)
	if g.Value() != 3 {
		t.Fatalf("gauge = %v, want 3", g.Value())
	}

	h := reg.Histogram("runtime.lateness", 0, 100, 10)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i))
	}
	snap := h.Snapshot()
	if snap.Count != 100 || snap.Min != 0 || snap.Max != 99 {
		t.Fatalf("histogram snapshot: %+v", snap)
	}
	if snap.P50 < 40 || snap.P50 > 60 {
		t.Fatalf("P50 = %v, want ≈ 50", snap.P50)
	}

	full := reg.Snapshot()
	if full.Counters["runtime.calls"] != 4 || full.Gauges["runtime.guard_level"] != 3 {
		t.Fatalf("registry snapshot: %+v", full)
	}
	if full.Histograms["runtime.lateness"].Count != 100 {
		t.Fatalf("registry snapshot histograms: %+v", full.Histograms)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				reg.Counter("c").Inc()
				reg.Gauge("g").SetMax(float64(i))
				reg.Histogram("h", 0, 1000, 16).Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := reg.Histogram("h", 0, 1000, 16).Snapshot().Count; got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestRegistryHTTPAndJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("instances").Add(42)
	reg.Gauge("drift").Set(0.25)

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"instances": 42`, `"drift": 0.25`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("JSON snapshot missing %q:\n%s", want, buf.String())
		}
	}

	rec := httptest.NewRecorder()
	reg.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"instances": 42`) {
		t.Fatalf("HTTP exposition: code %d body %s", rec.Code, rec.Body.String())
	}
}

func TestPublishExpvar(t *testing.T) {
	reg := NewRegistry()
	if err := reg.PublishExpvar("ctgdvfs-test-metrics"); err != nil {
		t.Fatal(err)
	}
	if err := reg.PublishExpvar("ctgdvfs-test-metrics"); err == nil {
		t.Fatal("duplicate publish must fail, not panic")
	}
}
