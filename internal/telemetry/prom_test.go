package telemetry

import (
	"bytes"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWriteProm(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("adaptive.misses").Add(3)
	reg.Gauge("power.cap").Set(1.5)
	reg.Gauge("weird").Set(math.Inf(1))
	h := reg.Histogram("adaptive.makespan", 0, 10, 10)
	h.Observe(2)
	h.Observe(4)

	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE adaptive_misses counter\nadaptive_misses 3\n",
		"# TYPE power_cap gauge\npower_cap 1.5\n",
		"weird +Inf\n",
		"# TYPE adaptive_makespan summary\n",
		"adaptive_makespan{quantile=\"0.5\"} ",
		"adaptive_makespan{quantile=\"0.95\"} ",
		"adaptive_makespan{quantile=\"0.99\"} ",
		"adaptive_makespan_sum 6\n",
		"adaptive_makespan_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Every line is either a TYPE comment or a name value sample.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if parts := strings.Split(line, " "); len(parts) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

// TestWritePromSanitizesNames pins the name mapping: dots and invalid runes
// become underscores and a leading digit gets a prefix.
func TestWritePromSanitizesNames(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("0day.count-total").Inc()
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "_0day_count_total 1\n") {
		t.Fatalf("name not sanitized:\n%s", buf.String())
	}
}

// TestExpositionDeterministic pins the sorted-output contract of both
// exposition formats: two registries holding the same metrics, registered in
// different orders, serialize byte-identically.
func TestExpositionDeterministic(t *testing.T) {
	build := func(order []string) *Registry {
		reg := NewRegistry()
		for _, n := range order {
			reg.Counter("c." + n).Add(int64(len(n)))
			reg.Gauge("g." + n).Set(0.5)
			reg.Histogram("h."+n, 0, 10, 4).Observe(3)
		}
		return reg
	}
	a := build([]string{"beta", "alpha", "gamma"})
	b := build([]string{"gamma", "beta", "alpha"})

	var aProm, bProm, aJSON, bJSON bytes.Buffer
	if err := a.WriteProm(&aProm); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteProm(&bProm); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aProm.Bytes(), bProm.Bytes()) {
		t.Fatalf("WriteProm depends on registration order:\n%s\nvs\n%s", aProm.String(), bProm.String())
	}
	if err := a.WriteJSON(&aJSON); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aJSON.Bytes(), bJSON.Bytes()) {
		t.Fatalf("WriteJSON depends on registration order:\n%s\nvs\n%s", aJSON.String(), bJSON.String())
	}
}

func TestServeProm(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Inc()
	rr := httptest.NewRecorder()
	reg.ServeProm(rr, httptest.NewRequest("GET", "/metrics/prom", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rr.Body.String(), "c 1\n") {
		t.Fatalf("body:\n%s", rr.Body.String())
	}
}
