package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"sync/atomic"

	"ctgdvfs/internal/stats"
)

// Counter is a monotonically adjustable integer metric. All methods are
// lock-free and safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be negative — used to net out warm-up increments).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float64 metric.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the value.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// SetMax stores the value only if it exceeds the current one.
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if v <= floatOf(old) {
			return
		}
		if g.bits.CompareAndSwap(old, floatBits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return floatOf(g.bits.Load()) }

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func floatOf(b uint64) float64   { return math.Float64frombits(b) }

// HistogramMetric is a mutex-guarded fixed-bucket histogram metric (the
// distribution counterpart of Counter/Gauge), backed by stats.Histogram.
type HistogramMetric struct {
	mu sync.Mutex
	h  *stats.Histogram
}

// Observe records one value.
func (m *HistogramMetric) Observe(x float64) {
	m.mu.Lock()
	m.h.Observe(x)
	m.mu.Unlock()
}

// Snapshot summarizes the distribution.
func (m *HistogramMetric) Snapshot() HistogramSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return HistogramSnapshot{
		Count: m.h.Count(),
		Mean:  m.h.Mean(),
		Min:   m.h.Min(),
		Max:   m.h.Max(),
		P50:   m.h.Quantile(0.50),
		P95:   m.h.Quantile(0.95),
		P99:   m.h.Quantile(0.99),
	}
}

// HistogramSnapshot is the exported summary of one histogram metric.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Registry is a process-local metrics registry: named counters, gauges and
// fixed-bucket histograms with a JSON snapshot and optional expvar/HTTP
// exposition. Metric handles are created on first use and cached; producers
// resolve their handles once (outside the hot path) and then operate
// lock-free (counters/gauges) or under a short mutex (histograms).
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*HistogramMetric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*HistogramMetric),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram metric, creating it over [lo, hi]
// with the given bucket count on first use (later calls keep the original
// layout and ignore the arguments).
func (r *Registry) Histogram(name string, lo, hi float64, buckets int) *HistogramMetric {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = &HistogramMetric{h: stats.MustHistogram(lo, hi, buckets)}
	r.hists[name] = h
	return h
}

// Snapshot is a point-in-time copy of every metric in the registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures all metrics.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteJSON renders the snapshot as indented JSON (keys sorted by
// encoding/json's map ordering, so output is deterministic).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// ServeHTTP exposes the snapshot as JSON — mount the registry on a mux
// (e.g. at /metrics) next to expvar's /debug/vars.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := r.WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// PublishExpvar publishes the registry under the given expvar name, so it
// also appears in the standard /debug/vars page. Returns an error instead of
// panicking when the name is already taken.
func (r *Registry) PublishExpvar(name string) (err error) {
	if expvar.Get(name) != nil {
		return fmt.Errorf("telemetry: expvar %q already published", name)
	}
	defer func() {
		if recover() != nil {
			err = fmt.Errorf("telemetry: expvar %q already published", name)
		}
	}()
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	return nil
}
