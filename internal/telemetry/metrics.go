package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"ctgdvfs/internal/stats"
)

// Counter is a monotonically adjustable integer metric. All methods are
// lock-free and safe for concurrent use. A counter created in a mirror
// registry (NewMirrorRegistry) forwards every write to the same-named counter
// of the parent, so local and aggregate views stay in sync from one call.
type Counter struct {
	v      atomic.Int64
	mirror *Counter
}

// Inc adds one.
func (c *Counter) Inc() {
	c.v.Add(1)
	if c.mirror != nil {
		c.mirror.Inc()
	}
}

// Add adds n (n may be negative — used to net out warm-up increments).
func (c *Counter) Add(n int64) {
	c.v.Add(n)
	if c.mirror != nil {
		c.mirror.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float64 metric. Mirror-registry gauges forward
// writes like Counter does.
type Gauge struct {
	bits   atomic.Uint64
	mirror *Gauge
}

// Set stores the value.
func (g *Gauge) Set(v float64) {
	g.bits.Store(floatBits(v))
	if g.mirror != nil {
		g.mirror.Set(v)
	}
}

// SetMax stores the value only if it exceeds the current one.
func (g *Gauge) SetMax(v float64) {
	if g.mirror != nil {
		g.mirror.SetMax(v)
	}
	for {
		old := g.bits.Load()
		if v <= floatOf(old) {
			return
		}
		if g.bits.CompareAndSwap(old, floatBits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return floatOf(g.bits.Load()) }

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func floatOf(b uint64) float64   { return math.Float64frombits(b) }

// HistogramMetric is a mutex-guarded fixed-bucket histogram metric (the
// distribution counterpart of Counter/Gauge), backed by stats.Histogram.
// Mirror-registry histograms forward observations like Counter does (outside
// the local lock — the two histograms never nest their mutexes).
type HistogramMetric struct {
	mu     sync.Mutex
	h      *stats.Histogram
	mirror *HistogramMetric
}

// Observe records one value.
func (m *HistogramMetric) Observe(x float64) {
	m.mu.Lock()
	m.h.Observe(x)
	m.mu.Unlock()
	if m.mirror != nil {
		m.mirror.Observe(x)
	}
}

// Snapshot summarizes the distribution.
func (m *HistogramMetric) Snapshot() HistogramSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return HistogramSnapshot{
		Count: m.h.Count(),
		Mean:  m.h.Mean(),
		Min:   m.h.Min(),
		Max:   m.h.Max(),
		P50:   m.h.Quantile(0.50),
		P95:   m.h.Quantile(0.95),
		P99:   m.h.Quantile(0.99),
	}
}

// HistogramSnapshot is the exported summary of one histogram metric.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Registry is a process-local metrics registry: named counters, gauges and
// fixed-bucket histograms with a JSON snapshot and optional expvar/HTTP
// exposition. Metric handles are created on first use and cached; producers
// resolve their handles once (outside the hot path) and then operate
// lock-free (counters/gauges) or under a short mutex (histograms).
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*HistogramMetric
	// parent, when non-nil, makes this a mirror registry: every handle
	// created here forwards its writes to the same-named handle in parent.
	parent *Registry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*HistogramMetric),
	}
}

// NewMirrorRegistry returns a registry whose metric handles forward every
// write to the same-named handle of parent. It gives one producer a private,
// deterministic view (e.g. for the series sampler) while the shared parent
// keeps aggregating across producers: reads from the mirror see only this
// producer's writes, reads from the parent see everyone's. A nil parent is
// equivalent to NewRegistry.
func NewMirrorRegistry(parent *Registry) *Registry {
	r := NewRegistry()
	r.parent = parent
	return r
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	if r.parent != nil {
		c.mirror = r.parent.Counter(name)
	}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	if r.parent != nil {
		g.mirror = r.parent.Gauge(name)
	}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram metric, creating it over [lo, hi]
// with the given bucket count on first use (later calls keep the original
// layout and ignore the arguments).
func (r *Registry) Histogram(name string, lo, hi float64, buckets int) *HistogramMetric {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = &HistogramMetric{h: stats.MustHistogram(lo, hi, buckets)}
	if r.parent != nil {
		h.mirror = r.parent.Histogram(name, lo, hi, buckets)
	}
	r.hists[name] = h
	return h
}

// Sizes returns the current number of counters, gauges and histograms — the
// cheap change check the series sampler uses to skip handle discovery on the
// steady-state path.
func (r *Registry) Sizes() (counters, gauges, hists int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.counters), len(r.gauges), len(r.hists)
}

// VisitCounters calls fn for every counter. Iteration order is unspecified
// (map order); callers needing determinism must sort what they collect.
func (r *Registry) VisitCounters(fn func(name string, c *Counter)) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		fn(name, c)
	}
}

// VisitGauges calls fn for every gauge (order unspecified, see VisitCounters).
func (r *Registry) VisitGauges(fn func(name string, g *Gauge)) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, g := range r.gauges {
		fn(name, g)
	}
}

// VisitHistograms calls fn for every histogram (order unspecified, see
// VisitCounters).
func (r *Registry) VisitHistograms(fn func(name string, h *HistogramMetric)) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, h := range r.hists {
		fn(name, h)
	}
}

// Snapshot is a point-in-time copy of every metric in the registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures all metrics.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// sortedKeys returns m's keys in lexicographic order — the explicit ordering
// contract of every exposition surface (WriteJSON, WriteProm, the series
// dump): two registries holding the same metrics render byte-identically no
// matter the creation order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// orderedSnapshot renders a Snapshot with explicitly sorted keys in every
// section, so WriteJSON's determinism does not hinge on encoding/json's map
// behavior.
type orderedSnapshot struct{ s Snapshot }

func (o orderedSnapshot) MarshalJSON() ([]byte, error) {
	var b []byte
	section := func(name string, keys []string, value func(string) any) error {
		if len(b) > 1 {
			b = append(b, ',')
		}
		nb, err := json.Marshal(name)
		if err != nil {
			return err
		}
		b = append(b, nb...)
		b = append(b, ':', '{')
		for i, k := range keys {
			if i > 0 {
				b = append(b, ',')
			}
			kb, err := json.Marshal(k)
			if err != nil {
				return err
			}
			vb, err := json.Marshal(value(k))
			if err != nil {
				return err
			}
			b = append(b, kb...)
			b = append(b, ':')
			b = append(b, vb...)
		}
		b = append(b, '}')
		return nil
	}
	b = append(b, '{')
	if err := section("counters", sortedKeys(o.s.Counters), func(k string) any { return o.s.Counters[k] }); err != nil {
		return nil, err
	}
	if err := section("gauges", sortedKeys(o.s.Gauges), func(k string) any { return o.s.Gauges[k] }); err != nil {
		return nil, err
	}
	if err := section("histograms", sortedKeys(o.s.Histograms), func(k string) any { return o.s.Histograms[k] }); err != nil {
		return nil, err
	}
	b = append(b, '}')
	return b, nil
}

// WriteJSON renders the snapshot as indented JSON with explicitly sorted
// keys in every section (see sortedKeys), so output is deterministic and
// diffs cleanly across runs.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(orderedSnapshot{r.Snapshot()})
}

// ServeHTTP exposes the snapshot as JSON — mount the registry on a mux
// (e.g. at /metrics) next to expvar's /debug/vars.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := r.WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// PublishExpvar publishes the registry under the given expvar name, so it
// also appears in the standard /debug/vars page. Returns an error instead of
// panicking when the name is already taken.
func (r *Registry) PublishExpvar(name string) (err error) {
	if expvar.Get(name) != nil {
		return fmt.Errorf("telemetry: expvar %q already published", name)
	}
	defer func() {
		if recover() != nil {
			err = fmt.Errorf("telemetry: expvar %q already published", name)
		}
	}()
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	return nil
}
