package telemetry

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
)

// promName sanitizes a registry metric name into the Prometheus name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*. Dots and any other invalid runes become
// underscores ("adaptive.miss_rate" → "adaptive_miss_rate"); a leading digit
// gets an underscore prefix. The mapping is stable, so sorted registry order
// stays sorted exposition order.
func promName(name string) string {
	if name == "" {
		return "_"
	}
	b := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b = append(b, c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b = append(b, '_')
			}
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	return string(b)
}

// promValue formats a sample value the way the text exposition format wants
// it: shortest round-trip float, with Prometheus' spellings for the
// non-finite values.
func promValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm renders the registry in the Prometheus text exposition format
// (version 0.0.4): counters as `counter`, gauges as `gauge`, and histogram
// metrics as `summary` (pre-computed p50/p95/p99 quantiles plus _sum and
// _count — the fixed-bucket layout is internal, the quantiles are what the
// registry guarantees). Families are emitted in sorted sanitized-name order,
// so scrapes diff cleanly across runs (same contract as WriteJSON).
func (r *Registry) WriteProm(w io.Writer) error {
	s := r.Snapshot()
	bw := bufio.NewWriter(w)

	for _, name := range sortedKeys(s.Counters) {
		n := promName(name)
		bw.WriteString("# TYPE " + n + " counter\n")
		bw.WriteString(n + " " + strconv.FormatInt(s.Counters[name], 10) + "\n")
	}
	for _, name := range sortedKeys(s.Gauges) {
		n := promName(name)
		bw.WriteString("# TYPE " + n + " gauge\n")
		bw.WriteString(n + " " + promValue(s.Gauges[name]) + "\n")
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		n := promName(name)
		bw.WriteString("# TYPE " + n + " summary\n")
		bw.WriteString(n + "{quantile=\"0.5\"} " + promValue(h.P50) + "\n")
		bw.WriteString(n + "{quantile=\"0.95\"} " + promValue(h.P95) + "\n")
		bw.WriteString(n + "{quantile=\"0.99\"} " + promValue(h.P99) + "\n")
		sum := h.Mean * float64(h.Count)
		if h.Count == 0 {
			sum = 0
		}
		bw.WriteString(n + "_sum " + promValue(sum) + "\n")
		bw.WriteString(n + "_count " + strconv.FormatUint(h.Count, 10) + "\n")
	}
	return bw.Flush()
}

// ServeProm exposes WriteProm over HTTP — mount it at /metrics/prom next to
// the JSON ServeHTTP endpoint.
func (r *Registry) ServeProm(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := r.WriteProm(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
