package telemetry

import "testing"

// TestMirrorRegistryForwards checks the mirror contract: every write through
// a mirror handle lands in both the mirror and the same-named parent handle,
// so private per-runtime registries stay samplable while a shared parent
// aggregates for live exposition.
func TestMirrorRegistryForwards(t *testing.T) {
	parent := NewRegistry()
	m1 := NewMirrorRegistry(parent)
	m2 := NewMirrorRegistry(parent)

	m1.Counter("c").Add(2)
	m2.Counter("c").Inc()
	if got := parent.Counter("c").Value(); got != 3 {
		t.Fatalf("parent counter = %d, want 3 (sum of mirrors)", got)
	}
	if got := m1.Counter("c").Value(); got != 2 {
		t.Fatalf("mirror counter = %d, want its own 2", got)
	}

	m1.Gauge("g").Set(1.5)
	if got := parent.Gauge("g").Value(); got != 1.5 {
		t.Fatalf("parent gauge = %g after mirror Set", got)
	}
	m1.Gauge("max").SetMax(5)
	m2.Gauge("max").SetMax(3)
	if got := parent.Gauge("max").Value(); got != 5 {
		t.Fatalf("parent max gauge = %g, want 5", got)
	}
	if got := m2.Gauge("max").Value(); got != 3 {
		t.Fatalf("mirror max gauge = %g, want its own 3", got)
	}

	m1.Histogram("h", 0, 10, 5).Observe(2)
	m2.Histogram("h", 0, 10, 5).Observe(4)
	if got := parent.Histogram("h", 0, 10, 5).Snapshot().Count; got != 2 {
		t.Fatalf("parent histogram count = %d, want 2", got)
	}
	if got := m1.Histogram("h", 0, 10, 5).Snapshot().Count; got != 1 {
		t.Fatalf("mirror histogram count = %d, want 1", got)
	}

	// A plain registry has no parent: writes stay local.
	if parent.Counter("c").Value() != 3 {
		t.Fatal("parent reads must not double-count")
	}
}

// TestRegistrySizesAndVisit covers the sweep API the series sampler is built
// on: Sizes as the cheap change check, Visit* as the handle enumeration.
func TestRegistrySizesAndVisit(t *testing.T) {
	r := NewRegistry()
	if c, g, h := r.Sizes(); c != 0 || g != 0 || h != 0 {
		t.Fatalf("empty registry sizes = %d/%d/%d", c, g, h)
	}
	r.Counter("a").Add(1)
	r.Counter("b").Add(2)
	r.Gauge("g").Set(3)
	r.Histogram("h", 0, 10, 5).Observe(4)
	if c, g, h := r.Sizes(); c != 2 || g != 1 || h != 1 {
		t.Fatalf("sizes = %d/%d/%d, want 2/1/1", c, g, h)
	}
	// Re-fetching a handle must not grow the registry.
	r.Counter("a").Add(1)
	if c, _, _ := r.Sizes(); c != 2 {
		t.Fatalf("counter count grew to %d on re-fetch", c)
	}

	counters := map[string]int64{}
	r.VisitCounters(func(name string, c *Counter) { counters[name] = c.Value() })
	if len(counters) != 2 || counters["a"] != 2 || counters["b"] != 2 {
		t.Fatalf("VisitCounters saw %v", counters)
	}
	gauges := map[string]float64{}
	r.VisitGauges(func(name string, g *Gauge) { gauges[name] = g.Value() })
	if len(gauges) != 1 || gauges["g"] != 3 {
		t.Fatalf("VisitGauges saw %v", gauges)
	}
	hists := map[string]uint64{}
	r.VisitHistograms(func(name string, h *HistogramMetric) { hists[name] = h.Snapshot().Count })
	if len(hists) != 1 || hists["h"] != 1 {
		t.Fatalf("VisitHistograms saw %v", hists)
	}
}
