package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// DefaultFlightTriggers are the event kinds that arm a flight-recorder dump
// when no explicit trigger set is configured: a circuit-breaker level change,
// a worst-case fallback activation, a health-monitor alert (SLO breach,
// drift, miss streak), a chip-power cap breach, and a series-rule alert
// firing — the moments an operator wants the black box for.
var DefaultFlightTriggers = []Kind{
	KindGuardLevel, KindFallback, KindHealthAlert, KindBudgetExceeded,
	KindAlertFiring,
}

// FlightRecorderOptions configures a FlightRecorder.
type FlightRecorderOptions struct {
	// Capacity is the ring size in events (default 256). The recorder keeps
	// the most recent Capacity events; a dump writes that window.
	Capacity int
	// Triggers are the kinds that fire an automatic dump (default
	// DefaultFlightTriggers). Ignored when Sink is nil.
	Triggers []Kind
	// Sink opens the destination of one automatic dump. It is called at
	// most once per trigger firing; the recorder writes the window as JSONL
	// and closes the writer. A nil Sink disables automatic dumps — the
	// recorder is then a pure black box read via Snapshot/DumpTo.
	Sink func() (io.WriteCloser, error)
	// Cooldown is the minimum number of recorded events between automatic
	// dumps, so a trigger storm (e.g. a fallback per instance during an
	// outage) produces distinct windows instead of near-duplicates. Default:
	// Capacity (a dump per full ring turnover). Use a negative value for no
	// cooldown.
	Cooldown int
}

// FlightRecorder is a fixed-capacity ring-buffer Recorder — the runtime's
// black box. It is cheap enough to leave always on: steady-state recording
// overwrites preallocated slots and allocates nothing (pinned by benchmark),
// and a nil *FlightRecorder ignores Record calls so the disabled path is one
// branch. When an armed trigger kind arrives it dumps the current window as
// JSONL through the configured sink; the window is a self-contained event
// stream that `ctgsched analyze` and `ctgsched explain` ingest directly.
//
// Events alias their Probs slices (like MemoryRecorder); producers emit
// fresh slices, so the window stays immutable once captured.
type FlightRecorder struct {
	mu       sync.Mutex
	buf      []Event
	head     int    // next write slot
	n        int    // live events (≤ len(buf))
	total    uint64 // events ever recorded
	trig     map[Kind]bool
	sink     func() (io.WriteCloser, error)
	cooldown int
	lastDump uint64 // total at the last automatic dump
	dumps    int
	err      error // first sink error, sticky
}

// NewFlightRecorder builds a flight recorder from opts (zero value = 256-slot
// black box with default triggers and no automatic dumps).
func NewFlightRecorder(opts FlightRecorderOptions) *FlightRecorder {
	capN := opts.Capacity
	if capN <= 0 {
		capN = 256
	}
	triggers := opts.Triggers
	if triggers == nil {
		triggers = DefaultFlightTriggers
	}
	trig := make(map[Kind]bool, len(triggers))
	for _, k := range triggers {
		trig[k] = true
	}
	cd := opts.Cooldown
	if cd == 0 {
		cd = capN
	} else if cd < 0 {
		cd = 0
	}
	return &FlightRecorder{
		buf:      make([]Event, capN),
		trig:     trig,
		sink:     opts.Sink,
		cooldown: cd,
	}
}

// Record stores the event in the ring, overwriting the oldest slot once full,
// and fires an automatic dump when the event's kind is an armed trigger (and
// the cooldown since the previous dump has elapsed). A nil receiver ignores
// the call, so "flight recorder not installed" costs one branch.
func (r *FlightRecorder) Record(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.head] = e
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	if r.n < len(r.buf) {
		r.n++
	}
	r.total++
	if r.sink != nil && r.trig[e.Kind] &&
		(r.lastDump == 0 || r.total-r.lastDump >= uint64(r.cooldown)) {
		r.dumpLocked()
	}
	r.mu.Unlock()
}

// dumpLocked writes the window through one sink opening. Sink and write
// errors are sticky (first kept, reported by Err); a failed dump still counts
// the cooldown so a broken sink is not retried on every trigger.
func (r *FlightRecorder) dumpLocked() {
	r.dumps++
	r.lastDump = r.total
	w, err := r.sink()
	if err != nil {
		if r.err == nil {
			r.err = err
		}
		return
	}
	err = r.writeLocked(w)
	if cerr := w.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil && r.err == nil {
		r.err = err
	}
}

// writeLocked encodes the window oldest-first as JSONL.
func (r *FlightRecorder) writeLocked(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	start := r.head - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		if err := enc.Encode(r.buf[(start+i)%len(r.buf)]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DumpTo writes the current window as JSONL to w (manual dump; does not
// count against the automatic-dump cooldown).
func (r *FlightRecorder) DumpTo(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.writeLocked(w)
}

// Snapshot returns the window oldest-first as a copy.
func (r *FlightRecorder) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, r.n)
	start := r.head - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(start+i)%len(r.buf)]
	}
	return out
}

// Len returns the number of events currently held (≤ capacity).
func (r *FlightRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Total returns the number of events ever recorded.
func (r *FlightRecorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dumps returns the number of automatic dumps fired (including failed ones).
func (r *FlightRecorder) Dumps() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dumps
}

// Err returns the first sink error seen by an automatic dump (sticky).
func (r *FlightRecorder) Err() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}
