package telemetry

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"sync"
)

// Recorder consumes telemetry events. Implementations must be safe for
// concurrent Record calls: replays fan out over the scenario-engine worker
// pool, and the experiment harness runs whole workloads in parallel.
//
// A nil Recorder means "telemetry disabled"; every producer checks for nil
// before building an event, so the disabled path allocates nothing.
type Recorder interface {
	Record(Event)
}

// MemoryRecorder buffers events in order of arrival. It is the sink the
// Chrome-trace exporter and the tests consume.
type MemoryRecorder struct {
	mu     sync.Mutex
	events []Event
}

// NewMemoryRecorder returns an empty in-memory sink.
func NewMemoryRecorder() *MemoryRecorder { return &MemoryRecorder{} }

// Record appends the event.
func (r *MemoryRecorder) Record(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a snapshot copy of the recorded stream.
func (r *MemoryRecorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Len returns the number of recorded events.
func (r *MemoryRecorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Reset discards all recorded events.
func (r *MemoryRecorder) Reset() {
	r.mu.Lock()
	r.events = r.events[:0]
	r.mu.Unlock()
}

// CountByKind tallies the recorded events per kind.
func (r *MemoryRecorder) CountByKind() map[Kind]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := make(map[Kind]int)
	for _, e := range r.events {
		m[e.Kind]++
	}
	return m
}

// ErrRecordAfterClose is the sticky error a JSONLRecorder reports when an
// event arrives after Close: the event was dropped, not written to a closed
// sink.
var ErrRecordAfterClose = errors.New("telemetry: record after close")

// JSONLRecorder streams events as one JSON object per line. Writes are
// buffered; call Close (or Flush) to drain the buffer. Encoding errors are
// sticky — the first one is kept and reported by Err, Flush and Close — so
// the hot path never returns an error, and nothing is silently swallowed: a
// lossy stream always surfaces its first failure. A closed recorder drops
// further events (recording ErrRecordAfterClose) instead of writing to the
// closed sink.
type JSONLRecorder struct {
	mu     sync.Mutex
	w      *bufio.Writer
	c      io.Closer // non-nil when the recorder owns the underlying writer
	enc    *json.Encoder
	err    error
	closed bool
}

// NewJSONLRecorder wraps an io.Writer. If the writer is also an io.Closer,
// Close closes it after flushing.
func NewJSONLRecorder(w io.Writer) *JSONLRecorder {
	bw := bufio.NewWriter(w)
	r := &JSONLRecorder{w: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		r.c = c
	}
	return r
}

// Record encodes the event as one JSONL line. After the first encode/write
// error the stream stops (the error is sticky; read it with Err); after Close
// events are dropped and ErrRecordAfterClose recorded.
func (r *JSONLRecorder) Record(e Event) {
	r.mu.Lock()
	switch {
	case r.closed:
		if r.err == nil {
			r.err = ErrRecordAfterClose
		}
	case r.err == nil:
		r.err = r.enc.Encode(e) // Encode appends the newline
	}
	r.mu.Unlock()
}

// Err returns the first encode/write error seen so far (nil while the stream
// is healthy). Check it after a run — Record itself never reports failures.
func (r *JSONLRecorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Flush drains the write buffer and returns the first error seen so far.
func (r *JSONLRecorder) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.flushLocked()
}

func (r *JSONLRecorder) flushLocked() error {
	if r.err == nil {
		r.err = r.w.Flush()
	}
	return r.err
}

// Close flushes and, when the recorder owns an io.Closer, closes it. Close
// is idempotent: later calls return the sticky error without touching the
// underlying writer again.
func (r *JSONLRecorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return r.err
	}
	r.closed = true
	err := r.flushLocked()
	if r.c != nil {
		if cerr := r.c.Close(); cerr != nil && err == nil {
			err = cerr
			r.err = cerr
		}
	}
	return err
}

// ReadJSONL decodes a JSONL event stream (the inverse of JSONLRecorder).
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for dec.More() {
		var e Event
		if err := dec.Decode(&e); err != nil {
			return out, err
		}
		out = append(out, e)
	}
	return out, nil
}

// MultiRecorder fans one event stream out to several sinks.
type MultiRecorder []Recorder

// Record forwards the event to every sink.
func (m MultiRecorder) Record(e Event) {
	for _, r := range m {
		r.Record(e)
	}
}

// FilterRecorder forwards only events of the listed kinds — e.g. keep the
// per-decision control events while dropping the (much denser) per-task
// slices when only a JSONL decision log is wanted.
type FilterRecorder struct {
	next  Recorder
	kinds map[Kind]bool
}

// NewFilterRecorder wraps next, passing through only the given kinds.
func NewFilterRecorder(next Recorder, kinds ...Kind) *FilterRecorder {
	m := make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		m[k] = true
	}
	return &FilterRecorder{next: next, kinds: m}
}

// Record forwards the event when its kind is selected.
func (f *FilterRecorder) Record(e Event) {
	if f.kinds[e.Kind] {
		f.next.Record(e)
	}
}
