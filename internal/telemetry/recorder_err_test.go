package telemetry

import (
	"bytes"
	"errors"
	"testing"
)

// failWriter fails every write after the first n bytes-worth of calls.
type failWriter struct {
	okWrites int
	writes   int
	closed   bool
}

var errDiskFull = errors.New("disk full")

func (w *failWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.okWrites {
		return 0, errDiskFull
	}
	return len(p), nil
}

func (w *failWriter) Close() error {
	w.closed = true
	return nil
}

// TestJSONLRecorderSurfacesWriteErrors pins the no-silent-loss guarantee: the
// first write failure is sticky and visible through Err, Flush and Close —
// Record never panics or blocks, but the stream's failure cannot go unseen.
func TestJSONLRecorderSurfacesWriteErrors(t *testing.T) {
	w := &failWriter{okWrites: 0}
	r := NewJSONLRecorder(w)
	// The bufio layer absorbs small events; force the flush path to fail.
	r.Record(Event{Kind: KindInstanceStart})
	if err := r.Flush(); !errors.Is(err, errDiskFull) {
		t.Fatalf("Flush = %v, want errDiskFull", err)
	}
	if err := r.Err(); !errors.Is(err, errDiskFull) {
		t.Fatalf("Err = %v, want errDiskFull", err)
	}
	// Later records are dropped without clearing the sticky error.
	r.Record(Event{Kind: KindInstanceFinish})
	if err := r.Close(); !errors.Is(err, errDiskFull) {
		t.Fatalf("Close = %v, want the first error kept", err)
	}
	if !w.closed {
		t.Fatal("owned writer not closed")
	}
}

// TestJSONLRecorderEncodeErrorSticky drives the encoder itself into failure
// (oversized event exceeding the failing writer's budget) and checks the
// healthy prefix survives while the error is reported.
func TestJSONLRecorderEncodeErrorSticky(t *testing.T) {
	var buf bytes.Buffer
	r := NewJSONLRecorder(&buf)
	r.Record(Event{Kind: KindInstanceStart, Instance: 1})
	if err := r.Err(); err != nil {
		t.Fatalf("healthy stream reports %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadJSONL(&buf)
	if err != nil || len(evs) != 1 {
		t.Fatalf("roundtrip: %d events, %v", len(evs), err)
	}
}

// TestJSONLRecorderClosedSinkGuard pins the close semantics: Close is
// idempotent, and events recorded after Close are dropped with
// ErrRecordAfterClose — never written into a closed writer.
func TestJSONLRecorderClosedSinkGuard(t *testing.T) {
	var buf bytes.Buffer
	r := NewJSONLRecorder(&buf)
	r.Record(Event{Kind: KindInstanceStart})
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	r.Record(Event{Kind: KindInstanceFinish})
	if buf.Len() != n {
		t.Fatal("event written after Close")
	}
	if err := r.Err(); !errors.Is(err, ErrRecordAfterClose) {
		t.Fatalf("Err = %v, want ErrRecordAfterClose", err)
	}
	// Idempotent: the second Close reports the sticky error, no new writes.
	if err := r.Close(); !errors.Is(err, ErrRecordAfterClose) {
		t.Fatalf("second Close = %v, want sticky ErrRecordAfterClose", err)
	}
	// A pre-close failure outranks the post-close drop marker.
	w := &failWriter{}
	r2 := NewJSONLRecorder(w)
	r2.Record(Event{Kind: KindInstanceStart})
	r2.Close()
	r2.Record(Event{Kind: KindInstanceFinish})
	if err := r2.Err(); !errors.Is(err, errDiskFull) {
		t.Fatalf("Err = %v, want first error (errDiskFull) kept", err)
	}
}
