package telemetry

import "sync/atomic"

// Sequencer hands out the monotonic per-stream sequence numbers that give
// events an identity (Event.Seq) for causal back-references (Event.Cause).
// Ids are 1-based so that 0 stays the "unsequenced / no cause" sentinel.
//
// One Sequencer per event stream: a standalone Manager owns its own, a Fleet
// shares one across all tenants and its own governor so ids are unique in the
// merged stream. Next is a single atomic add — safe for concurrent producers
// and allocation-free.
type Sequencer struct {
	n atomic.Uint64
}

// NewSequencer returns a sequencer whose first id is 1.
func NewSequencer() *Sequencer { return &Sequencer{} }

// Next returns the next sequence id (1, 2, 3, ...).
func (s *Sequencer) Next() uint64 { return s.n.Add(1) }

// Last returns the most recently issued id (0 if none yet).
func (s *Sequencer) Last() uint64 { return s.n.Load() }
