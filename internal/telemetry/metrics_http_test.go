package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

// TestMetricsHandlerJSONShape decodes the full /metrics response and checks
// the structured shape — counters, gauges and histogram summaries with
// ordered quantiles — rather than substring-matching the body.
func TestMetricsHandlerJSONShape(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("adaptive.instances").Add(7)
	reg.Gauge("adaptive.drift").Set(0.125)
	h := reg.Histogram("adaptive.makespan", 0, 200, 32)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}

	rr := httptest.NewRecorder()
	reg.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q, want application/json", ct)
	}

	var snap struct {
		Counters   map[string]int64   `json:"counters"`
		Gauges     map[string]float64 `json:"gauges"`
		Histograms map[string]struct {
			Count uint64  `json:"count"`
			Mean  float64 `json:"mean"`
			Min   float64 `json:"min"`
			Max   float64 `json:"max"`
			P50   float64 `json:"p50"`
			P95   float64 `json:"p95"`
			P99   float64 `json:"p99"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("response is not the snapshot JSON: %v\n%s", err, rr.Body.String())
	}
	if snap.Counters["adaptive.instances"] != 7 {
		t.Errorf("counter = %d, want 7", snap.Counters["adaptive.instances"])
	}
	if snap.Gauges["adaptive.drift"] != 0.125 {
		t.Errorf("gauge = %v, want 0.125", snap.Gauges["adaptive.drift"])
	}
	hs, ok := snap.Histograms["adaptive.makespan"]
	if !ok {
		t.Fatalf("histogram missing from snapshot:\n%s", rr.Body.String())
	}
	if hs.Count != 100 || hs.Min != 1 || hs.Max != 100 {
		t.Errorf("histogram summary wrong: %+v", hs)
	}
	if !(hs.P50 <= hs.P95 && hs.P95 <= hs.P99) {
		t.Errorf("quantiles unordered: %+v", hs)
	}
	if hs.Mean != 50.5 {
		t.Errorf("mean = %v, want 50.5", hs.Mean)
	}
}
