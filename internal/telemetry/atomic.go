package telemetry

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// AtomicFile is a crash-safe file writer: bytes land in a hidden temp file in
// the destination's directory, and only a successful Close fsyncs and renames
// it into place (then fsyncs the directory so the rename itself survives a
// crash). A process killed mid-write therefore never leaves a half-written
// capture under the destination name — readers either see the previous
// complete file or the new complete file, never a torn one that `analyze` /
// `explain` would report as mid-stream corruption. Abort (or a failed Close)
// removes the temp file and leaves the destination untouched.
type AtomicFile struct {
	dest string
	tmp  *os.File
	err  error // first write error, sticky — Close refuses to publish after it
}

// CreateAtomic opens an atomic writer targeting path. The temp file is
// created in path's directory (same filesystem, so the final rename is
// atomic).
func CreateAtomic(path string) (*AtomicFile, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, err
	}
	return &AtomicFile{dest: path, tmp: tmp}, nil
}

// Write appends to the pending temp file.
func (f *AtomicFile) Write(p []byte) (int, error) {
	if f.err != nil {
		return 0, f.err
	}
	n, err := f.tmp.Write(p)
	if err != nil {
		f.err = err
	}
	return n, err
}

// Close publishes the file: fsync, close, rename over the destination, fsync
// the directory. If any step — or any earlier Write — failed, the temp file
// is removed instead and the destination is left as it was.
func (f *AtomicFile) Close() error {
	if f.tmp == nil {
		return f.err
	}
	tmp := f.tmp
	f.tmp = nil
	if f.err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return f.err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		f.err = err
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		f.err = err
		return err
	}
	if err := os.Rename(tmp.Name(), f.dest); err != nil {
		os.Remove(tmp.Name())
		f.err = err
		return err
	}
	return syncDir(filepath.Dir(f.dest))
}

// Abort discards the pending bytes without touching the destination. Safe
// after Close (no-op).
func (f *AtomicFile) Abort() {
	if f.tmp == nil {
		return
	}
	tmp := f.tmp
	f.tmp = nil
	tmp.Close()
	os.Remove(tmp.Name())
}

// syncDir fsyncs a directory so a just-renamed entry is durable. Filesystems
// that refuse to sync directories (some network mounts) degrade gracefully:
// the rename is still atomic, only its durability window widens.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}

// WriteFileAtomic writes the output of fn to path crash-safely: fn streams
// into a temp file that is fsynced and atomically renamed into place only if
// fn succeeded. On error the destination is untouched.
func WriteFileAtomic(path string, fn func(io.Writer) error) error {
	f, err := CreateAtomic(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Abort()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("telemetry: atomic write %s: %w", path, err)
	}
	return nil
}

// AtomicSink adapts CreateAtomic to the FlightRecorder's Sink signature: each
// dump goes to pathFor(dump index) via a temp file + atomic rename, so a kill
// mid-dump never leaves a torn flight capture.
func AtomicSink(pathFor func(dump int) string) func() (io.WriteCloser, error) {
	n := 0
	return func() (io.WriteCloser, error) {
		n++
		return CreateAtomic(pathFor(n))
	}
}
