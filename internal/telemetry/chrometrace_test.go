package telemetry_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ctgdvfs/internal/core"
	"ctgdvfs/internal/telemetry"
	"ctgdvfs/internal/tgff"
	"ctgdvfs/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the chrometrace golden file")

// goldenEvents replays a small deterministic CTG through the adaptive manager
// with a memory recorder attached. Everything in the chain is seeded: the
// workload generator, the decision stream, the scheduler and the replay — so
// the recorded stream, and hence the exported trace, is byte-stable.
func goldenEvents(t *testing.T) []telemetry.Event {
	t.Helper()
	cfg := tgff.Config{Seed: 42, Nodes: 10, PEs: 2, Branches: 2, Category: tgff.ForkJoin}
	g, p, err := tgff.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.NewMemoryRecorder()
	m, err := core.New(g, p, core.Options{Window: 5, Threshold: 0.1, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(trace.Fluctuating(g, 4, 6, 0.45)); err != nil {
		t.Fatal(err)
	}
	return rec.Events()
}

// TestChromeTraceGolden pins the exporter's exact output. On intentional
// format changes rerun with -update and eyeball the diff (and reload the file
// in Perfetto).
func TestChromeTraceGolden(t *testing.T) {
	ct := telemetry.NewChromeTrace()
	ct.AddRun("adaptive", 1, goldenEvents(t))
	var buf bytes.Buffer
	if err := ct.Write(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrometrace_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run go test ./internal/telemetry -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace output drifted from golden file (len %d vs %d);\nrun with -update if the change is intentional", buf.Len(), len(want))
	}
}

// TestChromeTraceWellFormed validates the structural invariants any trace
// viewer relies on, independent of the exact golden bytes.
func TestChromeTraceWellFormed(t *testing.T) {
	ct := telemetry.NewChromeTrace()
	ct.AddRun("adaptive", 1, goldenEvents(t))
	var buf bytes.Buffer
	if err := ct.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Ph    string  `json:"ph"`
			Ts    float64 `json:"ts"`
			Dur   float64 `json:"dur"`
			Pid   int     `json:"pid"`
			Tid   int     `json:"tid"`
			ID    string  `json:"id"`
			Scope string  `json:"s"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
	slices, flows := 0, make(map[string]int)
	for _, e := range file.TraceEvents {
		switch e.Ph {
		case "X":
			slices++
			if e.Ts < 0 || e.Dur < 0 {
				t.Fatalf("slice with negative timing: %+v", e)
			}
		case "s", "f":
			flows[e.ID]++
		case "M", "i", "C":
		default:
			t.Fatalf("unexpected phase %q in %+v", e.Ph, e)
		}
	}
	if slices == 0 {
		t.Fatal("no duration slices in trace")
	}
	for id, n := range flows {
		if n != 2 {
			t.Fatalf("flow %q has %d endpoints, want matched s/f pair", id, n)
		}
	}
}
