package telemetry

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// closableBuffer is a bytes.Buffer with a Close, counting closes.
type closableBuffer struct {
	bytes.Buffer
	closed int
}

func (b *closableBuffer) Close() error { b.closed++; return nil }

func TestSequencerMonotonic(t *testing.T) {
	s := NewSequencer()
	if got := s.Last(); got != 0 {
		t.Fatalf("fresh Last = %d, want 0", got)
	}
	for want := uint64(1); want <= 5; want++ {
		if got := s.Next(); got != want {
			t.Fatalf("Next = %d, want %d", got, want)
		}
	}
	if got := s.Last(); got != 5 {
		t.Fatalf("Last = %d, want 5", got)
	}
}

func TestFlightRecorderWindow(t *testing.T) {
	r := NewFlightRecorder(FlightRecorderOptions{Capacity: 4})
	for i := 1; i <= 6; i++ {
		r.Record(Event{Kind: KindTaskSlice, Instance: i})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Total() != 6 {
		t.Fatalf("Total = %d, want 6", r.Total())
	}
	snap := r.Snapshot()
	for i, e := range snap {
		if want := i + 3; e.Instance != want {
			t.Fatalf("snapshot[%d].Instance = %d, want %d (oldest-first window)", i, e.Instance, want)
		}
	}
	var buf bytes.Buffer
	if err := r.DumpTo(&buf); err != nil {
		t.Fatalf("DumpTo: %v", err)
	}
	evs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL(dump): %v", err)
	}
	if len(evs) != 4 || evs[0].Instance != 3 || evs[3].Instance != 6 {
		t.Fatalf("dump round-trip = %+v", evs)
	}
}

func TestFlightRecorderTriggerDump(t *testing.T) {
	var sinks []*closableBuffer
	r := NewFlightRecorder(FlightRecorderOptions{
		Capacity: 8,
		Cooldown: -1, // every trigger dumps
		Sink: func() (io.WriteCloser, error) {
			b := &closableBuffer{}
			sinks = append(sinks, b)
			return b, nil
		},
	})
	for i := 0; i < 3; i++ {
		r.Record(Event{Kind: KindTaskSlice, Instance: i, Seq: uint64(i + 1)})
	}
	if r.Dumps() != 0 {
		t.Fatalf("dump before any trigger: %d", r.Dumps())
	}
	r.Record(Event{Kind: KindFallback, Instance: 3, Seq: 4, Cause: 1})
	if r.Dumps() != 1 || len(sinks) != 1 {
		t.Fatalf("Dumps = %d, sinks = %d, want 1/1", r.Dumps(), len(sinks))
	}
	if sinks[0].closed != 1 {
		t.Fatalf("sink closed %d times, want 1", sinks[0].closed)
	}
	evs, err := ReadJSONL(&sinks[0].Buffer)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(evs) != 4 {
		t.Fatalf("dump has %d events, want 4 (window incl. trigger)", len(evs))
	}
	last := evs[len(evs)-1]
	if last.Kind != KindFallback || last.Seq != 4 || last.Cause != 1 {
		t.Fatalf("trigger event not last / fields lost: %+v", last)
	}
	// Second trigger (no cooldown): a fresh window through a fresh sink.
	r.Record(Event{Kind: KindGuardLevel, Instance: 4, Seq: 5})
	if r.Dumps() != 2 || len(sinks) != 2 {
		t.Fatalf("after 2nd trigger: Dumps = %d, sinks = %d", r.Dumps(), len(sinks))
	}
	if r.Err() != nil {
		t.Fatalf("Err = %v", r.Err())
	}
}

func TestFlightRecorderCooldown(t *testing.T) {
	dumps := 0
	r := NewFlightRecorder(FlightRecorderOptions{
		Capacity: 4, // default cooldown = capacity
		Sink: func() (io.WriteCloser, error) {
			dumps++
			return &closableBuffer{}, nil
		},
	})
	r.Record(Event{Kind: KindFallback})
	r.Record(Event{Kind: KindFallback}) // within cooldown: suppressed
	if dumps != 1 {
		t.Fatalf("dumps = %d, want 1 (cooldown suppresses back-to-back)", dumps)
	}
	for i := 0; i < 4; i++ {
		r.Record(Event{Kind: KindTaskSlice})
	}
	r.Record(Event{Kind: KindFallback}) // cooldown elapsed
	if dumps != 2 {
		t.Fatalf("dumps = %d, want 2 after cooldown elapsed", dumps)
	}
}

func TestFlightRecorderSinkErrorSticky(t *testing.T) {
	boom := errors.New("sink boom")
	calls := 0
	r := NewFlightRecorder(FlightRecorderOptions{
		Capacity: 4,
		Cooldown: -1,
		Sink:     func() (io.WriteCloser, error) { calls++; return nil, boom },
	})
	r.Record(Event{Kind: KindFallback})
	r.Record(Event{Kind: KindFallback})
	if !errors.Is(r.Err(), boom) {
		t.Fatalf("Err = %v, want %v", r.Err(), boom)
	}
	if calls != 2 {
		t.Fatalf("sink calls = %d, want 2 (dump still attempted; error sticky)", calls)
	}
	if r.Dumps() != 2 {
		t.Fatalf("Dumps = %d, want 2 (failed dumps counted)", r.Dumps())
	}
}

func TestFlightRecorderNilDisabled(t *testing.T) {
	var r *FlightRecorder
	r.Record(Event{Kind: KindFallback}) // must not panic
	if r.Len() != 0 || r.Total() != 0 || r.Dumps() != 0 || r.Err() != nil {
		t.Fatal("nil recorder reported state")
	}
}

func TestFlightRecorderZeroAllocSteadyState(t *testing.T) {
	r := NewFlightRecorder(FlightRecorderOptions{Capacity: 64})
	ev := Event{Kind: KindTaskSlice, Instance: 1, Task: 2, PE: 1, Start: 0.5, End: 1.5, Seq: 9}
	allocs := testing.AllocsPerRun(1000, func() { r.Record(ev) })
	if allocs != 0 {
		t.Fatalf("steady-state Record allocates %v/op, want 0", allocs)
	}
	var nilRec *FlightRecorder
	allocs = testing.AllocsPerRun(1000, func() { nilRec.Record(ev) })
	if allocs != 0 {
		t.Fatalf("nil Record allocates %v/op, want 0", allocs)
	}
}
