// Package telemetry is the runtime observability layer of the adaptive
// framework: a structured event stream, a metrics registry, and a Chrome
// trace-event exporter. (It is distinct from internal/trace, which generates
// branch-decision workloads.)
//
// The event stream answers *why* the runtime did what it did on a given CTG
// instance — which fork estimate drifted, whether the re-schedule was a cache
// hit, how much slack the stretcher found, which task overran, when the
// fallback or the circuit breaker fired — where the end-of-run aggregates
// (core.RunStats) only say how often. Producers (core.Manager, internal/sim,
// internal/stretch) accept a Recorder through their options and emit nothing
// when it is nil: every emission site is guarded by a nil check before any
// event value is built, so the disabled path costs one predictable branch and
// zero allocations.
package telemetry

// Kind enumerates the event taxonomy. The values are stable strings (they
// appear in JSONL output and trace files), not iota constants.
type Kind string

const (
	// KindInstanceStart opens one CTG instance: Instance, Scenario.
	KindInstanceStart Kind = "instance_start"
	// KindInstanceFinish closes one CTG instance: Instance, Scenario,
	// Energy, Makespan, Met, Lateness, Overruns, plus Rescheduled for
	// adaptive runs.
	KindInstanceFinish Kind = "instance_finish"
	// KindTaskSlice is one executed task of a replay: Instance, Task,
	// Name, PE, Start, End, Speed, and Factor (> 1 when a fault plan
	// perturbed the execution).
	KindTaskSlice Kind = "task_slice"
	// KindCommSlice is one link transfer of a replay: Instance, Edge,
	// Task (producer), Task2 (consumer), PE (source), PE2 (destination),
	// Start, End.
	KindCommSlice Kind = "comm_slice"
	// KindEstimate is one fork's windowed probability estimate after an
	// instance's decisions were observed: Instance, Fork, Probs, Drift.
	KindEstimate Kind = "window_estimate"
	// KindReschedule is one re-scheduling decision: Instance, Reason
	// ("drift", "breaker", "initial"), CacheHit, Warm (served incrementally
	// from the incumbent schedule), Key (hex cache key), Calls so far.
	KindReschedule Kind = "reschedule"
	// KindStretch summarizes one stretching pass: Instance, Stretched
	// task count (Tasks), SlackFound, SlackUsed, Energy (expected,
	// post-stretch). Emitted only when a schedule is computed fresh (a
	// cache hit reuses the recorded-at-miss stretch verbatim).
	KindStretch Kind = "stretch_summary"
	// KindOverrun is one fault-plan perturbed task execution: Instance,
	// Task, PE, Factor.
	KindOverrun Kind = "fault_overrun"
	// KindFallback is one worst-case fallback activation: Instance, Met
	// (did the fallback re-run meet the deadline), Makespan (fallback),
	// Makespan2 (failed primary).
	KindFallback Kind = "fallback"
	// KindGuardLevel is one circuit-breaker level change: Instance,
	// Level (new), Level2 (previous).
	KindGuardLevel Kind = "guard_level"
	// KindHealthAlert is one health-monitor alert (internal/health):
	// Instance, Reason (alert type: "drift", "miss_streak", "slo"), Fork
	// (drift alerts), Name (SLO verdict name), Value (observed), Threshold
	// (configured bound).
	KindHealthAlert Kind = "health_alert"
	// KindPEDown marks a processing element leaving the survivor set at an
	// instance boundary: Instance, PE, Reason ("permanent" or "transient"),
	// Alive (survivor count after the loss).
	KindPEDown Kind = "pe_down"
	// KindPEUp marks a transient PE returning to service: Instance, PE,
	// Alive (survivor count after the repair).
	KindPEUp Kind = "pe_up"
	// KindLinkDown marks a directed link outage: Instance, PE (from), PE2
	// (to).
	KindLinkDown Kind = "link_down"
	// KindLinkUp marks a directed link repair: Instance, PE (from), PE2
	// (to).
	KindLinkUp Kind = "link_up"
	// KindRemap is one availability-driven re-mapping decision: Instance,
	// Reason ("degraded" when hardware was lost, "restored" when the full
	// topology returned), Alive (survivor count the new schedule targets).
	KindRemap Kind = "remap"
	// KindBudgetExceeded marks one full measurement window whose mean chip
	// power exceeded the configured cap: Instance (fleet round), Value
	// (window mean), Threshold (cap), Level (degradation-ladder level in
	// force when it was measured).
	KindBudgetExceeded Kind = "budget_exceeded"
	// KindPERevoked marks a PE revoked from a tenant by the power governor
	// (a budget-revoked PE is a masked PE): Instance (fleet round), PE, Name
	// (tenant), Level (ladder level), Alive (PEs the tenant keeps).
	KindPERevoked Kind = "pe_revoked"
	// KindTenantDegraded is one degradation-ladder rung applied to a tenant:
	// Instance (fleet round), Name (tenant, "" for fleet-wide guard rungs),
	// Reason ("guard", "revoke", "shed"), Level (ladder level now in force),
	// Value (the new guard band on guard rungs).
	KindTenantDegraded Kind = "tenant_degraded"
	// KindTenantRestored is one degradation-ladder rung released: the same
	// fields as KindTenantDegraded, with Level the level restored *to*.
	KindTenantRestored Kind = "tenant_restored"
	// KindSpan is one timed phase of the reschedule pipeline: Instance,
	// Name (phase: "diff", "dls", "stretch", "validate"), Value (wall time
	// in microseconds), Cause (the trigger the pipeline ran for).
	KindSpan Kind = "pipeline_span"
	// KindAlertFiring is one series-rule alert starting to fire
	// (internal/series): Instance (sample tick), Name (rule name), Reason
	// (watched metric), Value (observed), Threshold (rule bound), Level
	// (consecutive breaching samples), Cause (the instance_finish — or the
	// fleet round's budget breach — the triggering sample was taken at).
	KindAlertFiring Kind = "alert_firing"
	// KindAlertResolved closes a firing series-rule alert: the same fields
	// as KindAlertFiring, with Cause the alert_firing being resolved.
	KindAlertResolved Kind = "alert_resolved"
	// KindTenantPanic is one contained tenant-worker panic in the serving
	// daemon (internal/serve): Instance (the tenant's instance count when it
	// panicked), Name (tenant), Reason (the recovered panic value), Level
	// (consecutive panic count), Cause (the last event the tenant's stream
	// recorded before the panic — typically the instance_start of the
	// panicking step).
	KindTenantPanic Kind = "tenant_panic"
	// KindTenantRestart is one tenant-worker restart after a contained
	// failure: Instance (the instance count the rebuilt state replayed to),
	// Name (tenant), Reason ("panic_backoff" after a panic, "cancel_rebuild"
	// after a deadline-cancelled step left the estimator mid-instance),
	// Value (the backoff that was served, in milliseconds), Cause (the
	// tenant_panic — or the last pre-cancellation event — being recovered
	// from).
	KindTenantRestart Kind = "tenant_restart"
	// KindCheckpoint is one atomic tenant-state snapshot written by the
	// daemon: Instance (instances captured), Name (tenant), Calls
	// (reschedule calls captured), Key (hex schedule digest the restore must
	// reproduce).
	KindCheckpoint Kind = "checkpoint"
	// KindRestore is one tenant resumed from a snapshot at daemon startup:
	// Instance (instances replayed to), Name (tenant), Key (hex schedule
	// digest, verified bit-for-bit against the snapshot's), Reason ("ok", or
	// "fallback" when the primary snapshot was torn/corrupt and the previous
	// generation was used).
	KindRestore Kind = "restore"
)

// Event is one telemetry record. A single flat struct (rather than one type
// per kind) keeps recording allocation-free for sinks that buffer values and
// keeps JSONL lines self-describing; unused fields are omitted from JSON.
// Field pairs (Task/Task2, PE/PE2, Makespan/Makespan2, Level/Level2) hold the
// kind-specific secondary value documented on each Kind constant.
type Event struct {
	Kind Kind `json:"kind"`
	// Instance is the CTG-instance index the event belongs to (the step
	// index for adaptive runs, the scenario index for exhaustive replays).
	Instance int `json:"instance"`

	// Seq is the event's position in its stream: a monotonic 1-based id
	// stamped from a Sequencer. 0 means the producer was not sequencing
	// (pre-provenance streams stay readable). Seq identifies an event so
	// that later events can name it as their Cause.
	Seq uint64 `json:"seq,omitempty"`
	// Cause is the Seq of the event that triggered this one — the drifted
	// estimate behind a reschedule, the budget breach behind a ladder rung,
	// the pe_down behind a remap. 0 means no recorded cause (spontaneous or
	// unsequenced). Chains of Cause links reconstruct full decision
	// provenance; `ctgsched explain` walks them.
	Cause uint64 `json:"cause,omitempty"`

	Scenario int     `json:"scenario,omitempty"`
	Task     int     `json:"task,omitempty"`
	Task2    int     `json:"task2,omitempty"`
	Name     string  `json:"name,omitempty"`
	PE       int     `json:"pe,omitempty"`
	PE2      int     `json:"pe2,omitempty"`
	Edge     int     `json:"edge,omitempty"`
	Start    float64 `json:"start,omitempty"`
	End      float64 `json:"end,omitempty"`
	Speed    float64 `json:"speed,omitempty"`
	Factor   float64 `json:"factor,omitempty"`

	Energy    float64 `json:"energy,omitempty"`
	Makespan  float64 `json:"makespan,omitempty"`
	Makespan2 float64 `json:"makespan2,omitempty"`
	Lateness  float64 `json:"lateness,omitempty"`
	Met       bool    `json:"met,omitempty"`
	Overruns  int     `json:"overruns,omitempty"`

	Fork  int       `json:"fork,omitempty"`
	Probs []float64 `json:"probs,omitempty"`
	Drift float64   `json:"drift,omitempty"`
	// Outcome is the realized branch outcome behind a KindEstimate event —
	// the decision that was just shifted into the fork's window. The health
	// layer's drift detector compares it against the estimate stream.
	Outcome int `json:"outcome,omitempty"`

	// Value and Threshold carry a KindHealthAlert's observed value and the
	// configured bound it crossed.
	Value     float64 `json:"value,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`

	Reason      string `json:"reason,omitempty"`
	CacheHit    bool   `json:"cache_hit,omitempty"`
	Warm        bool   `json:"warm,omitempty"`
	Key         string `json:"key,omitempty"`
	Calls       int    `json:"calls,omitempty"`
	Rescheduled bool   `json:"rescheduled,omitempty"`

	Tasks      int     `json:"tasks,omitempty"`
	SlackFound float64 `json:"slack_found,omitempty"`
	SlackUsed  float64 `json:"slack_used,omitempty"`

	Level  int `json:"level,omitempty"`
	Level2 int `json:"level2,omitempty"`

	// Alive is the surviving-PE count carried by availability events
	// (KindPEDown, KindPEUp, KindRemap).
	Alive int `json:"alive,omitempty"`

	// Phase distinguishes replay passes within one instance: "" is the
	// primary replay, PhaseFallback the worst-case fallback re-run.
	Phase string `json:"phase,omitempty"`
}

// PhaseFallback marks events emitted by the worst-case fallback re-run of an
// instance whose primary replay missed the deadline.
const PhaseFallback = "fallback"
