package sched

import (
	"errors"
	"sync/atomic"
	"testing"

	"ctgdvfs/internal/ctg"
)

var errCancelled = errors.New("cancelled")

// countingCancel is a monotone cancel source: nil for the first fuse polls,
// errCancelled forever after.
type countingCancel struct {
	polls atomic.Int64
	fuse  int64
}

func (c *countingCancel) fn() func() error {
	return func() error {
		if c.polls.Add(1) > c.fuse {
			return errCancelled
		}
		return nil
	}
}

// longChain builds a 12-task chain (12 placement rounds).
func longChain(t *testing.T) *ctg.Analysis {
	t.Helper()
	b := ctg.NewBuilder()
	prev := b.AddTask("", ctg.AndNode)
	for i := 1; i < 12; i++ {
		cur := b.AddTask("", ctg.AndNode)
		b.AddEdge(prev, cur, 0)
		prev = cur
	}
	g, err := b.Build(1000)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestDLSCancelAbortsWithinOneRound(t *testing.T) {
	a := longChain(t)
	p := uniformPlatform(t, 12, 2, 10, 5)
	cc := &countingCancel{fuse: 3}
	ws := NewWorkspace()
	ws.Cancel = cc.fn()
	s, err := DLSInto(a, p, Modified(), ws)
	if !errors.Is(err, errCancelled) {
		t.Fatalf("want errCancelled, got %v (schedule %v)", err, s)
	}
	if s != nil {
		t.Fatal("cancelled DLS returned a schedule")
	}
	// Promptness: polled once per placement round, so the abort happened on
	// poll fuse+1 — not after running the remaining rounds to completion.
	if got := cc.polls.Load(); got != cc.fuse+1 {
		t.Fatalf("polled %d times, want %d (abort within one round)", got, cc.fuse+1)
	}
}

func TestDLSCancelCompletedRunIdentical(t *testing.T) {
	a := longChain(t)
	p := uniformPlatform(t, 12, 2, 10, 5)
	want, err := DLS(a, p, Modified())
	if err != nil {
		t.Fatal(err)
	}
	// A cancel source that never fires during the run must leave the result
	// bit-for-bit identical to an uncancelled run.
	cc := &countingCancel{fuse: 1 << 30}
	ws := NewWorkspace()
	ws.Cancel = cc.fn()
	got, err := DLSInto(a, p, Modified(), ws)
	if err != nil {
		t.Fatal(err)
	}
	if cc.polls.Load() == 0 {
		t.Fatal("cancel source was never polled")
	}
	if got.Makespan != want.Makespan {
		t.Fatalf("makespan %v != %v", got.Makespan, want.Makespan)
	}
	for i := range want.PE {
		if got.PE[i] != want.PE[i] || got.Start[i] != want.Start[i] || got.Speed[i] != want.Speed[i] {
			t.Fatalf("task %d differs: (%d,%v,%v) vs (%d,%v,%v)", i,
				got.PE[i], got.Start[i], got.Speed[i], want.PE[i], want.Start[i], want.Speed[i])
		}
	}
}
