package sched

import (
	"sort"

	"ctgdvfs/internal/ctg"
)

// interval is a reserved busy period on a resource (PE or link), tagged with
// the set of scenarios in which the occupying activity actually happens. Two
// intervals may overlap in time iff their scenario sets are disjoint — that
// is the paper's "mutually exclusive tasks may start on the same processor
// during the same time".
type interval struct {
	start, end float64
	scen       ctg.Bitset
}

// timeline tracks the reservations of one resource, kept sorted by start
// time. Sizes here are tiny (tens of tasks), so linear scans are both simple
// and fast.
type timeline struct {
	ivals []interval
}

// reset empties the timeline, retaining capacity for reuse across DLS calls
// (see Workspace).
func (tl *timeline) reset() { tl.ivals = tl.ivals[:0] }

// conflictsAt reports whether placing an activity over [t, t+dur) with the
// given scenario set would overlap a reservation active in a shared
// scenario.
func (tl *timeline) conflictsAt(t, dur float64, scen ctg.Bitset) bool {
	end := t + dur
	for _, iv := range tl.ivals {
		if iv.start >= end {
			break // sorted: nothing later can overlap
		}
		if iv.end > t && iv.scen.Intersects(scen) {
			return true
		}
	}
	return false
}

// earliestFit returns the earliest start ≥ ready at which an activity of the
// given duration and scenario set fits. Candidate starts are the ready time
// and the end of each conflicting reservation.
func (tl *timeline) earliestFit(ready, dur float64, scen ctg.Bitset) float64 {
	if !tl.conflictsAt(ready, dur, scen) {
		return ready
	}
	best := -1.0
	for _, iv := range tl.ivals {
		t := iv.end
		if t < ready {
			continue
		}
		if !tl.conflictsAt(t, dur, scen) && (best < 0 || t < best) {
			best = t
		}
	}
	if best < 0 {
		// Unreachable for finite timelines (the end of the last interval
		// always fits), but keep a safe fallback.
		last := 0.0
		for _, iv := range tl.ivals {
			if iv.end > last {
				last = iv.end
			}
		}
		if last < ready {
			last = ready
		}
		return last
	}
	return best
}

// add reserves [start, start+dur) for an activity with the given scenario
// set. Zero-duration activities reserve nothing.
func (tl *timeline) add(start, dur float64, scen ctg.Bitset) {
	if dur <= 0 {
		return
	}
	tl.ivals = append(tl.ivals, interval{start: start, end: start + dur, scen: scen})
	sort.Slice(tl.ivals, func(i, j int) bool { return tl.ivals[i].start < tl.ivals[j].start })
}
