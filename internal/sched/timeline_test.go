package sched

import (
	"testing"

	"ctgdvfs/internal/ctg"
)

func bs(n int, bits ...int) ctg.Bitset {
	b := ctg.NewBitset(n)
	for _, i := range bits {
		b.Set(i)
	}
	return b
}

func TestTimelineEarliestFitEmpty(t *testing.T) {
	var tl timeline
	if got := tl.earliestFit(3, 5, bs(4, 0)); got != 3 {
		t.Fatalf("earliestFit on empty timeline = %v, want 3", got)
	}
}

func TestTimelineSerializesConflicts(t *testing.T) {
	var tl timeline
	all := bs(4, 0, 1, 2, 3)
	tl.add(0, 10, all)
	if got := tl.earliestFit(0, 5, all); got != 10 {
		t.Fatalf("earliestFit = %v, want 10", got)
	}
	// Fits into the gap after the first interval, before a later one.
	tl.add(20, 10, all)
	if got := tl.earliestFit(0, 5, all); got != 10 {
		t.Fatalf("earliestFit with gap = %v, want 10", got)
	}
	if got := tl.earliestFit(0, 15, all); got != 30 {
		t.Fatalf("earliestFit too big for gap = %v, want 30", got)
	}
	if got := tl.earliestFit(12, 5, all); got != 12 {
		t.Fatalf("earliestFit inside gap = %v, want 12", got)
	}
}

func TestTimelineAllowsMutuallyExclusiveOverlap(t *testing.T) {
	var tl timeline
	s0 := bs(4, 0)
	s1 := bs(4, 1)
	s01 := bs(4, 0, 1)
	tl.add(0, 10, s0)
	// Disjoint scenario sets may overlap in time.
	if got := tl.earliestFit(0, 5, s1); got != 0 {
		t.Fatalf("ME overlap rejected: earliestFit = %v, want 0", got)
	}
	// Intersecting sets must serialize.
	if got := tl.earliestFit(0, 5, s01); got != 10 {
		t.Fatalf("intersecting sets overlapped: earliestFit = %v, want 10", got)
	}
}

func TestTimelineZeroDurationAddIsNoop(t *testing.T) {
	var tl timeline
	tl.add(5, 0, bs(1, 0))
	if len(tl.ivals) != 0 {
		t.Fatal("zero-duration interval was stored")
	}
}

func TestTimelineConflictsAtBoundary(t *testing.T) {
	var tl timeline
	all := bs(1, 0)
	tl.add(0, 10, all)
	// Half-open intervals: starting exactly at the end is fine.
	if tl.conflictsAt(10, 5, all) {
		t.Fatal("back-to-back intervals must not conflict")
	}
	if !tl.conflictsAt(9.999, 5, all) {
		t.Fatal("overlapping intervals must conflict")
	}
}
