package sched

import (
	"testing"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/tgff"
)

// contentionWorkload: one producer on PE0 feeding two consumers pinned to
// PE1, both with large transfers over the same link.
func contentionWorkload(t *testing.T) (*ctg.Analysis, *platform.Platform) {
	t.Helper()
	b := ctg.NewBuilder()
	src := b.AddTask("src", ctg.AndNode)
	c1 := b.AddTask("c1", ctg.AndNode)
	c2 := b.AddTask("c2", ctg.AndNode)
	b.AddEdge(src, c1, 10)
	b.AddEdge(src, c2, 10)
	g, err := b.Build(1000)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	pb := platform.NewBuilder(3, 2)
	pb.SetTask(0, []float64{10, 1000}, []float64{1, 1})
	pb.SetTask(1, []float64{1000, 10}, []float64{1, 1})
	pb.SetTask(2, []float64{1000, 10}, []float64{1, 1})
	pb.SetAllLinks(1, 0.1) // 10 KB at 1 KB/tu = 10 tu per transfer
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return a, p
}

func TestCommAwareSerializesLinkTransfers(t *testing.T) {
	a, p := contentionWorkload(t)
	s, err := DLS(a, p, Modified())
	if err != nil {
		t.Fatal(err)
	}
	// Producer finishes at 10. Transfers serialize on the PE0→PE1 link:
	// first at 10..20, second at 20..30. The consumers' PE also
	// serializes, so the later consumer starts at max(30, first consumer
	// end).
	cs := []float64{s.CommStart[0], s.CommStart[1]}
	if cs[0] > cs[1] {
		cs[0], cs[1] = cs[1], cs[0]
	}
	if cs[0] != 10 || cs[1] != 20 {
		t.Fatalf("contention-aware transfer starts = %v, want [10 20]", cs)
	}
	order := s.LinkOrder[[2]int{0, 1}]
	if len(order) != 2 {
		t.Fatalf("link order has %d transfers, want 2", len(order))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}

	// The contention-blind variant lets both transfers start at 10; its
	// nominal schedule is optimistic (both consumers "arrive" at 20).
	opts := Modified()
	opts.CommAware = false
	s2, err := DLS(a, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s2.CommStart[0] != 10 || s2.CommStart[1] != 10 {
		t.Fatalf("contention-blind transfer starts = %v %v, want both 10",
			s2.CommStart[0], s2.CommStart[1])
	}
	if s2.Makespan > s.Makespan {
		t.Fatal("blind variant cannot be nominally slower than the aware one")
	}
}

func TestValidateCatchesBrokenSchedules(t *testing.T) {
	a, p := contentionWorkload(t)
	good, err := DLS(a, p, Modified())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*Schedule){
		"pe out of range":   func(s *Schedule) { s.PE[0] = 99 },
		"negative start":    func(s *Schedule) { s.Start[1] = -1 },
		"zero speed":        func(s *Schedule) { s.Speed[2] = 0 },
		"speed above 1":     func(s *Schedule) { s.Speed[2] = 1.5 },
		"precedence broken": func(s *Schedule) { s.Start[1] = 0 },
		"comm too early":    func(s *Schedule) { s.CommStart[0] = 1 },
		"pe overlap": func(s *Schedule) {
			// Move both consumers to the same instant on PE1.
			s.Start[1] = 40
			s.Start[2] = 45
			s.CommStart[0] = 10
			s.CommStart[1] = 20
			s.sortPEOrder()
		},
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			s := good.Clone()
			corrupt(s)
			if err := s.Validate(); err == nil {
				t.Fatalf("corruption %q not caught", name)
			}
		})
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("pristine schedule rejected: %v", err)
	}
}

func TestValidateSizesMismatch(t *testing.T) {
	a, p := contentionWorkload(t)
	s, err := DLS(a, p, Modified())
	if err != nil {
		t.Fatal(err)
	}
	s.Speed = s.Speed[:1]
	if err := s.Validate(); err == nil {
		t.Fatal("short speed vector not caught")
	}
}

func TestLinkOrderMatchesCommStarts(t *testing.T) {
	// The transfers recorded per link must be sorted by their scheduled
	// start times on every random workload.
	for seed := int64(0); seed < 15; seed++ {
		g, p, err := tgff.Generate(tgff.Config{
			Seed: 4100 + seed, Nodes: 18, PEs: 3, Branches: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, err := ctg.Analyze(g)
		if err != nil {
			t.Fatal(err)
		}
		s, err := DLS(a, p, Modified())
		if err != nil {
			t.Fatal(err)
		}
		for link, edges := range s.LinkOrder {
			prev := -1.0
			for _, ei := range edges {
				e := s.G.Edge(ei)
				if s.PE[e.From] != link[0] || s.PE[e.To] != link[1] {
					t.Fatalf("seed %d: edge %d on wrong link %v", seed, ei, link)
				}
				cs := s.CommStart[ei]
				if cs == LocalComm {
					t.Fatalf("seed %d: local edge %d in link order", seed, ei)
				}
				if cs < prev {
					t.Fatalf("seed %d link %v: transfer starts unordered (%v after %v)",
						seed, link, cs, prev)
				}
				prev = cs
			}
		}
	}
}
