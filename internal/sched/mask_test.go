package sched

import (
	"errors"
	"testing"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/tgff"
)

// forkJoinGraph builds two parallel sources a, b feeding a join task c with
// the given communication volume on both edges.
func forkJoinGraph(t *testing.T, comm float64) *ctg.Analysis {
	t.Helper()
	b := ctg.NewBuilder()
	a := b.AddTask("", ctg.AndNode)
	bb := b.AddTask("", ctg.AndNode)
	c := b.AddTask("", ctg.AndNode)
	b.AddEdge(a, c, comm)
	b.AddEdge(bb, c, comm)
	g, err := b.Build(1000)
	if err != nil {
		t.Fatal(err)
	}
	an, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func restrict(t *testing.T, p *platform.Platform, m platform.Mask) *platform.Platform {
	t.Helper()
	r, err := p.Restrict(m)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSchedulersAvoidDeadPE(t *testing.T) {
	g, gp, err := tgff.Generate(tgff.Config{Seed: 5, Nodes: 20, PEs: 3, Branches: 3})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	m := platform.FullMask(3)
	m.PEs[1] = false
	rp := restrict(t, gp, m)

	for name, build := range map[string]func() (*Schedule, error){
		"dls":  func() (*Schedule, error) { return DLS(a, rp, Modified()) },
		"heft": func() (*Schedule, error) { return HEFT(a, rp) },
	} {
		s, err := build()
		if err != nil {
			t.Fatalf("%s on degraded platform: %v", name, err)
		}
		for task, pe := range s.PE {
			if pe == 1 {
				t.Fatalf("%s placed task %d on dead PE 1", name, task)
			}
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s degraded schedule invalid: %v", name, err)
		}
	}
}

func TestSchedulersAvoidDownLinks(t *testing.T) {
	g, gp, err := tgff.Generate(tgff.Config{Seed: 9, Nodes: 16, PEs: 3, Branches: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	m := platform.FullMask(3)
	m.Links[0][1] = false
	m.Links[1][0] = false
	rp := restrict(t, gp, m)

	for name, build := range map[string]func() (*Schedule, error){
		"dls":  func() (*Schedule, error) { return DLS(a, rp, Modified()) },
		"heft": func() (*Schedule, error) { return HEFT(a, rp) },
	} {
		s, err := build()
		if err != nil {
			t.Fatalf("%s with down links: %v", name, err)
		}
		for ei := range s.G.Edges() {
			if s.CommStart[ei] == LocalComm {
				continue
			}
			e := s.G.Edge(ei)
			if !rp.LinkUp(s.PE[e.From], s.PE[e.To]) {
				t.Fatalf("%s routed edge %d->%d over down link %d->%d",
					name, e.From, e.To, s.PE[e.From], s.PE[e.To])
			}
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s link-degraded schedule invalid: %v", name, err)
		}
	}
}

func TestValidateRejectsPlacementsOnMaskedHardware(t *testing.T) {
	a := forkJoinGraph(t, 10)
	p := uniformPlatform(t, 3, 2, 5, 1)

	for name, build := range map[string]func() (*Schedule, error){
		"dls":  func() (*Schedule, error) { return DLS(a, p, Modified()) },
		"heft": func() (*Schedule, error) { return HEFT(a, p) },
	} {
		s, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s healthy schedule invalid: %v", name, err)
		}
		// The healthy schedule uses both PEs (the sources spread), so
		// validating it against a view where one of them died must fail.
		usedPE := s.PE[0]
		m := platform.FullMask(2)
		m.PEs[usedPE] = false
		masked := *s
		masked.P = restrict(t, p, m)
		if err := masked.Validate(); err == nil {
			t.Fatalf("%s: schedule placing tasks on dead PE %d passed validation", name, usedPE)
		}
		// Likewise a schedule whose cross-PE transfer crosses a down link.
		if s.PE[0] == s.PE[1] {
			t.Fatalf("%s: sources unexpectedly colocated, cannot exercise link check", name)
		}
		lm := platform.FullMask(2)
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				if i != j {
					lm.Links[i][j] = false
				}
			}
		}
		linkMasked := *s
		linkMasked.P = restrict(t, p, lm)
		if err := linkMasked.Validate(); err == nil {
			t.Fatalf("%s: schedule routing comm over down links passed validation", name)
		}
	}
}

func TestSchedulersReportInfeasibleTopology(t *testing.T) {
	// Sources a and b spread across the two PEs; with every cross link down,
	// the join task c cannot receive both dependencies anywhere — the greedy
	// (which never backtracks) must fail with the typed error.
	a := forkJoinGraph(t, 10)
	p := uniformPlatform(t, 3, 2, 5, 1)
	m := platform.FullMask(2)
	m.Links[0][1] = false
	m.Links[1][0] = false
	rp := restrict(t, p, m)

	for name, build := range map[string]func() (*Schedule, error){
		"dls":  func() (*Schedule, error) { return DLS(a, rp, Modified()) },
		"heft": func() (*Schedule, error) { return HEFT(a, rp) },
	} {
		_, err := build()
		var ie *InfeasibleError
		if !errors.As(err, &ie) {
			t.Fatalf("%s: want *InfeasibleError, got %v", name, err)
		}
		if ie.Task != 2 {
			t.Fatalf("%s: infeasible task = %d, want the join task 2", name, ie.Task)
		}
	}
}

func TestSingleSurvivorSerializesEverything(t *testing.T) {
	g, gp, err := tgff.Generate(tgff.Config{Seed: 3, Nodes: 12, PEs: 3, Branches: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	m := platform.FullMask(3)
	m.PEs[0] = false
	m.PEs[2] = false
	rp := restrict(t, gp, m)
	s, err := DLS(a, rp, Modified())
	if err != nil {
		t.Fatal(err)
	}
	for task, pe := range s.PE {
		if pe != 1 {
			t.Fatalf("task %d on PE %d with only PE 1 alive", task, pe)
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for ei := range s.G.Edges() {
		if s.CommStart[ei] != LocalComm {
			t.Fatalf("edge %d scheduled a link transfer on a single-PE topology", ei)
		}
	}
}
