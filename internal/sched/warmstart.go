package sched

import (
	"fmt"

	"ctgdvfs/internal/ctg"
)

// This file is the warm-start entry point of the mapping stage. An adaptive
// re-schedule triggered by a small probability drift does not need a new
// mapping: given a fixed task→PE assignment and resource order, the nominal
// start times, communication starts and pseudo edges are all
// probability-independent (they follow from WCETs, the platform and the
// resource orders alone). Branch probabilities only influence which mapping
// DLS *selects* and how the stretching stage weights slack. The warm path
// therefore reuses the incumbent schedule skeleton wholesale — copied into a
// reusable buffer so the incumbent (possibly shared with the schedule cache)
// is never mutated — and leaves only the speed assignment to be recomputed
// by stretch.HeuristicPartial.

// CopyInto deep-copies s into dst, reusing dst's backing storage where the
// capacity allows. dst may be nil (a fresh Schedule is allocated). When dst
// was last used for a schedule of the same shape — the steady state of the
// warm-start loop, which alternates between two buffers of one mapping — the
// copy allocates nothing.
func (s *Schedule) CopyInto(dst *Schedule) *Schedule {
	if dst == nil {
		dst = &Schedule{}
	}
	dst.G, dst.A, dst.P = s.G, s.A, s.P
	dst.PE = append(dst.PE[:0], s.PE...)
	dst.Start = append(dst.Start[:0], s.Start...)
	dst.Speed = append(dst.Speed[:0], s.Speed...)
	dst.Order = append(dst.Order[:0], s.Order...)
	if cap(dst.PEOrder) < len(s.PEOrder) {
		dst.PEOrder = make([][]ctg.TaskID, len(s.PEOrder))
	}
	dst.PEOrder = dst.PEOrder[:len(s.PEOrder)]
	for pe := range s.PEOrder {
		dst.PEOrder[pe] = append(dst.PEOrder[pe][:0], s.PEOrder[pe]...)
	}
	dst.CommStart = append(dst.CommStart[:0], s.CommStart...)
	if dst.LinkOrder == nil {
		dst.LinkOrder = make(map[[2]int][]int, len(s.LinkOrder))
	}
	for k, v := range dst.LinkOrder {
		if _, ok := s.LinkOrder[k]; !ok {
			delete(dst.LinkOrder, k)
		} else {
			dst.LinkOrder[k] = v[:0]
		}
	}
	for k, v := range s.LinkOrder {
		dst.LinkOrder[k] = append(dst.LinkOrder[k][:0], v...)
	}
	dst.Pseudo = append(dst.Pseudo[:0], s.Pseudo...)
	dst.Makespan = s.Makespan
	return dst
}

// WarmState double-buffers the schedule copies of the warm-start path. Start
// always copies the incumbent into the buffer the incumbent does *not*
// occupy, so a warm-started schedule handed to the runtime stays immutable
// while the next warm start builds its successor — the same
// never-mutate-a-published-schedule discipline the schedule cache relies on.
type WarmState struct {
	bufs [2]*Schedule
	cur  int
}

// NewWarmState returns an empty warm-start buffer pair.
func NewWarmState() *WarmState { return &WarmState{} }

// Start copies the incumbent schedule into the alternate buffer and returns
// it. The returned schedule shares the immutable graph/analysis/platform and
// is safe to mutate (speeds) without touching the incumbent. After the first
// two calls on one mapping, Start allocates nothing.
func (w *WarmState) Start(incumbent *Schedule) *Schedule {
	w.cur = 1 - w.cur
	if w.bufs[w.cur] == incumbent {
		// The caller handed us our own buffer out of order; take the other
		// one rather than self-copying.
		w.cur = 1 - w.cur
	}
	w.bufs[w.cur] = incumbent.CopyInto(w.bufs[w.cur])
	return w.bufs[w.cur]
}

// QuickValidate is the O(tasks + edges) consistency check of the warm-start
// path: placement, speed ranges, and precedence-plus-communication
// inequalities. It is Validate without the quadratic per-PE exclusivity scan
// — warm starts never move tasks between PEs, so exclusivity is inherited
// from the (fully validated) incumbent mapping.
func (s *Schedule) QuickValidate() error {
	n := s.G.NumTasks()
	if len(s.PE) != n || len(s.Start) != n || len(s.Speed) != n {
		return fmt.Errorf("sched: schedule arrays sized %d/%d/%d, want %d",
			len(s.PE), len(s.Start), len(s.Speed), n)
	}
	for t := 0; t < n; t++ {
		if err := s.validTask(t); err != nil {
			return err
		}
	}
	return s.validEdges()
}
