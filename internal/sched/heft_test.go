package sched

import (
	"testing"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/tgff"
)

func TestHEFTOnRandomCTGsIsValid(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		cat := tgff.ForkJoin
		if seed%2 == 1 {
			cat = tgff.Flat
		}
		g, p, err := tgff.Generate(tgff.Config{
			Seed: 3100 + seed, Nodes: 14 + int(seed%10), PEs: 2 + int(seed%3),
			Branches: int(seed % 4), Category: cat,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, err := ctg.Analyze(g)
		if err != nil {
			t.Fatal(err)
		}
		s, err := HEFT(a, p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Order respects precedence.
		pos := make([]int, g.NumTasks())
		for i, tid := range s.Order {
			pos[tid] = i
		}
		for _, e := range g.Edges() {
			if pos[e.From] >= pos[e.To] {
				t.Fatalf("seed %d: HEFT order violates edge %d->%d", seed, e.From, e.To)
			}
		}
	}
}

func TestHEFTComparableToDLS(t *testing.T) {
	// Neither heuristic dominates in general, but on average over random
	// workloads their makespans should be in the same ballpark (within
	// 30% of each other) — a sanity check that the HEFT port is not
	// broken.
	var dlsSum, heftSum float64
	for seed := int64(0); seed < 20; seed++ {
		g, p, err := tgff.Generate(tgff.Config{
			Seed: 3300 + seed, Nodes: 20, PEs: 3, Branches: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, err := ctg.Analyze(g)
		if err != nil {
			t.Fatal(err)
		}
		sd, err := DLS(a, p, Modified())
		if err != nil {
			t.Fatal(err)
		}
		sh, err := HEFT(a, p)
		if err != nil {
			t.Fatal(err)
		}
		dlsSum += sd.Makespan
		heftSum += sh.Makespan
	}
	ratio := heftSum / dlsSum
	if ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("HEFT/DLS makespan ratio %v out of sanity band", ratio)
	}
}

func TestHEFTExploitsMutualExclusion(t *testing.T) {
	// Same single-PE fork workload as the DLS test: exclusive arms must
	// overlap under HEFT as well.
	b := ctg.NewBuilder()
	f := b.AddTask("fork", ctg.AndNode)
	l := b.AddTask("left", ctg.AndNode)
	r := b.AddTask("right", ctg.AndNode)
	j := b.AddTask("join", ctg.OrNode)
	b.AddCondEdge(f, l, 0, 0)
	b.AddCondEdge(f, r, 0, 1)
	b.AddEdge(l, j, 0)
	b.AddEdge(r, j, 0)
	g, err := b.Build(1000)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	p := uniformPlatform(t, 4, 1, 10, 5)
	s, err := HEFT(a, p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 30 {
		t.Fatalf("HEFT makespan %v, want 30 (overlapped exclusive arms)", s.Makespan)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHEFTPlatformMismatch(t *testing.T) {
	g, _, err := tgff.Generate(tgff.Config{Seed: 4, Nodes: 12, PEs: 2, Branches: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	p := uniformPlatform(t, 5, 2, 1, 1)
	if _, err := HEFT(a, p); err == nil {
		t.Fatal("want error on platform size mismatch")
	}
}
