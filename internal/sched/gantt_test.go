package sched

import (
	"strings"
	"testing"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/tgff"
)

func TestGanttRendersEveryTask(t *testing.T) {
	g, p, err := tgff.Generate(tgff.Config{Seed: 12, Nodes: 14, PEs: 3, Branches: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	s, err := DLS(a, p, Modified())
	if err != nil {
		t.Fatal(err)
	}
	chart := s.Gantt(120)
	for pe := 0; pe < p.NumPEs(); pe++ {
		if !strings.Contains(chart, "PE") {
			t.Fatal("chart missing PE rows")
		}
	}
	lines := strings.Split(strings.TrimRight(chart, "\n"), "\n")
	if len(lines) < p.NumPEs()+1 {
		t.Fatalf("chart has %d lines, want at least %d", len(lines), p.NumPEs()+1)
	}
	// Every line with content stays inside the bars.
	for _, ln := range lines[1:] {
		if !strings.Contains(ln, "|") {
			t.Fatalf("row without frame: %q", ln)
		}
	}
}

func TestGanttStacksExclusiveTasks(t *testing.T) {
	// Fork with two exclusive arms on one PE: the overlapping arms need a
	// stacked row.
	b := ctg.NewBuilder()
	f := b.AddTask("f", ctg.AndNode)
	l := b.AddTask("l", ctg.AndNode)
	r := b.AddTask("r", ctg.AndNode)
	b.AddCondEdge(f, l, 0, 0)
	b.AddCondEdge(f, r, 0, 1)
	g, err := b.Build(100)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	p := uniformPlatform(t, 3, 1, 10, 1)
	s, err := DLS(a, p, Modified())
	if err != nil {
		t.Fatal(err)
	}
	chart := s.Gantt(60)
	lines := strings.Split(strings.TrimRight(chart, "\n"), "\n")
	// The exclusive arms overlap in time, so they must land on different
	// rows (header + ≥2 PE0 rows).
	if len(lines) < 3 {
		t.Fatalf("chart:\n%s\nwant stacked rows, got %d lines", chart, len(lines))
	}
	row1, row2 := -1, -1
	for i, ln := range lines {
		if strings.Contains(ln, "1=") {
			row1 = i
		}
		if strings.Contains(ln, "2=") {
			row2 = i
		}
	}
	if row1 < 0 || row2 < 0 || row1 == row2 {
		t.Fatalf("chart:\n%s\nexclusive arms not stacked (rows %d, %d)", chart, row1, row2)
	}
}

func TestGanttEmptyAndDefaults(t *testing.T) {
	g, p, err := tgff.Generate(tgff.Config{Seed: 12, Nodes: 8, PEs: 2, Branches: 0})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	s, err := DLS(a, p, Modified())
	if err != nil {
		t.Fatal(err)
	}
	if out := s.Gantt(0); !strings.Contains(out, "time 0") {
		t.Fatal("default width render failed")
	}
	s.Makespan = 0
	if out := s.Gantt(10); !strings.Contains(out, "empty") {
		t.Fatal("empty schedule render failed")
	}
}
