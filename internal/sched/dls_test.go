package sched

import (
	"math"
	"testing"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/tgff"
)

// chainGraph builds t0 -> t1 -> t2 with the given comm volumes.
func chainGraph(t *testing.T, comm float64) (*ctg.Graph, *ctg.Analysis) {
	t.Helper()
	b := ctg.NewBuilder()
	t0 := b.AddTask("", ctg.AndNode)
	t1 := b.AddTask("", ctg.AndNode)
	t2 := b.AddTask("", ctg.AndNode)
	b.AddEdge(t0, t1, comm)
	b.AddEdge(t1, t2, comm)
	g, err := b.Build(1000)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	return g, a
}

func uniformPlatform(t *testing.T, tasks, pes int, wcet, energy float64) *platform.Platform {
	t.Helper()
	b := platform.NewBuilder(tasks, pes)
	for i := 0; i < tasks; i++ {
		b.SetUniformTask(i, wcet, energy)
	}
	b.SetAllLinks(1, 0.1)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDLSChainStaysLocal(t *testing.T) {
	// With heavy communication, a chain must stay on one PE.
	g, a := chainGraph(t, 100)
	p := uniformPlatform(t, 3, 2, 10, 5)
	s, err := DLS(a, p, Modified())
	if err != nil {
		t.Fatal(err)
	}
	if s.PE[0] != s.PE[1] || s.PE[1] != s.PE[2] {
		t.Fatalf("chain split across PEs: %v", s.PE)
	}
	if s.Makespan != 30 {
		t.Fatalf("Makespan = %v, want 30", s.Makespan)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	_ = g
}

func TestDLSParallelSpreads(t *testing.T) {
	// Two independent tasks with zero comm must land on different PEs.
	b := ctg.NewBuilder()
	src := b.AddTask("", ctg.AndNode)
	x := b.AddTask("", ctg.AndNode)
	y := b.AddTask("", ctg.AndNode)
	b.AddEdge(src, x, 0)
	b.AddEdge(src, y, 0)
	g, err := b.Build(1000)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	p := uniformPlatform(t, 3, 2, 10, 5)
	s, err := DLS(a, p, Modified())
	if err != nil {
		t.Fatal(err)
	}
	if s.PE[x] == s.PE[y] {
		t.Fatalf("parallel tasks share PE %d", s.PE[x])
	}
	if s.Makespan != 20 {
		t.Fatalf("Makespan = %v, want 20", s.Makespan)
	}
}

func TestDLSPrefersFasterPE(t *testing.T) {
	// A heterogeneous single task must go to its fastest PE.
	b := ctg.NewBuilder()
	b.AddTask("", ctg.AndNode)
	g, err := b.Build(100)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	pb := platform.NewBuilder(1, 3)
	pb.SetTask(0, []float64{30, 10, 20}, []float64{1, 1, 1})
	pb.SetAllLinks(1, 0)
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := DLS(a, p, Modified())
	if err != nil {
		t.Fatal(err)
	}
	if s.PE[0] != 1 {
		t.Fatalf("task on PE %d, want 1", s.PE[0])
	}
}

func TestDLSMutualExclusionOverlap(t *testing.T) {
	// Fork with two exclusive arms on a single PE: the arms may overlap in
	// time, so the makespan must be fork + max(arm) + join, not the sum.
	b := ctg.NewBuilder()
	f := b.AddTask("fork", ctg.AndNode)
	l := b.AddTask("left", ctg.AndNode)
	r := b.AddTask("right", ctg.AndNode)
	j := b.AddTask("join", ctg.OrNode)
	b.AddCondEdge(f, l, 0, 0)
	b.AddCondEdge(f, r, 0, 1)
	b.AddEdge(l, j, 0)
	b.AddEdge(r, j, 0)
	g, err := b.Build(1000)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	p := uniformPlatform(t, 4, 1, 10, 5) // single PE forces sharing
	s, err := DLS(a, p, Modified())
	if err != nil {
		t.Fatal(err)
	}
	if s.Start[l] != 10 || s.Start[r] != 10 {
		t.Fatalf("exclusive arms did not overlap: start l=%v r=%v", s.Start[l], s.Start[r])
	}
	if s.Makespan != 30 {
		t.Fatalf("Makespan = %v, want 30", s.Makespan)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}

	// The plain scheduler serializes the same arms.
	s2, err := DLS(a, p, Plain())
	if err != nil {
		t.Fatal(err)
	}
	if s2.Makespan != 40 {
		t.Fatalf("plain Makespan = %v, want 40 (serialized arms)", s2.Makespan)
	}
}

func TestStaticLevelsProbabilistic(t *testing.T) {
	// fork f with arms of different lengths: probabilistic SL weights them.
	b := ctg.NewBuilder()
	f := b.AddTask("", ctg.AndNode)
	long := b.AddTask("", ctg.AndNode)
	short := b.AddTask("", ctg.AndNode)
	tail := b.AddTask("", ctg.AndNode)
	b.AddCondEdge(f, long, 0, 0)
	b.AddCondEdge(f, short, 0, 1)
	b.AddEdge(long, tail, 0)
	b.SetBranchProbs(f, []float64{0.25, 0.75})
	g, err := b.Build(100)
	if err != nil {
		t.Fatal(err)
	}
	p := uniformPlatform(t, 4, 2, 10, 1)

	sl := staticLevels(g, p, true)
	// SL(tail)=10, SL(long)=20, SL(short)=10,
	// SL(f)=10 + 0.25·20 + 0.75·10 = 22.5.
	if math.Abs(sl[f]-22.5) > 1e-9 {
		t.Fatalf("probabilistic SL(f) = %v, want 22.5", sl[f])
	}
	slPlain := staticLevels(g, p, false)
	// Plain: SL(f) = 10 + max(20,10) = 30.
	if math.Abs(slPlain[f]-30) > 1e-9 {
		t.Fatalf("plain SL(f) = %v, want 30", slPlain[f])
	}
}

func TestDLSCommunicationDelaysStart(t *testing.T) {
	// Producer on PE0, consumer pinned to PE1 by heterogeneity: start of
	// consumer must include the transfer time (volume / bandwidth).
	b := ctg.NewBuilder()
	src := b.AddTask("", ctg.AndNode)
	dst := b.AddTask("", ctg.AndNode)
	b.AddEdge(src, dst, 10) // 10 KB
	g, err := b.Build(1000)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	pb := platform.NewBuilder(2, 2)
	pb.SetTask(0, []float64{10, 1000}, []float64{1, 1}) // src pinned to PE0
	pb.SetTask(1, []float64{1000, 10}, []float64{1, 1}) // dst pinned to PE1
	pb.SetAllLinks(2, 0.1)                              // 10 KB at 2 KB/tu = 5 tu
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := DLS(a, p, Modified())
	if err != nil {
		t.Fatal(err)
	}
	if s.PE[src] != 0 || s.PE[dst] != 1 {
		t.Fatalf("mapping %v, want [0 1]", s.PE)
	}
	if s.Start[dst] != 15 { // 10 exec + 5 comm
		t.Fatalf("Start[dst] = %v, want 15", s.Start[dst])
	}
	if s.CommStart[0] != 10 {
		t.Fatalf("CommStart = %v, want 10", s.CommStart[0])
	}
	if got := s.CommTime(0); got != 5 {
		t.Fatalf("CommTime = %v, want 5", got)
	}
	if got := s.CommEnergy(0); got != 1 {
		t.Fatalf("CommEnergy = %v, want 1", got)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDLSOnRandomCTGsIsValid(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		cat := tgff.ForkJoin
		if seed%2 == 1 {
			cat = tgff.Flat
		}
		g, p, err := tgff.Generate(tgff.Config{
			Seed: seed, Nodes: 15 + int(seed%10), PEs: 2 + int(seed%3),
			Branches: int(seed % 4), Category: cat,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, err := ctg.Analyze(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, opts := range []Options{Modified(), Plain(), {Probabilistic: true}} {
			s, err := DLS(a, p, opts)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("seed %d opts %+v: %v", seed, opts, err)
			}
			// Order must be precedence-compatible.
			pos := make([]int, g.NumTasks())
			for i, tid := range s.Order {
				pos[tid] = i
			}
			for _, e := range g.Edges() {
				if pos[e.From] >= pos[e.To] {
					t.Fatalf("seed %d: order violates edge %d->%d", seed, e.From, e.To)
				}
			}
			// Makespan covers every task end.
			for task := 0; task < g.NumTasks(); task++ {
				end := s.Start[task] + p.WCET(task, s.PE[task])
				if end > s.Makespan+1e-9 {
					t.Fatalf("seed %d: task %d ends after makespan", seed, task)
				}
			}
		}
	}
}

func TestPseudoEdgesSerializeEveryScenario(t *testing.T) {
	// In every scenario, any two co-active tasks on one PE must be ordered
	// through real+pseudo edges (transitively).
	for seed := int64(0); seed < 20; seed++ {
		g, p, err := tgff.Generate(tgff.Config{
			Seed: 500 + seed, Nodes: 18, PEs: 2, Branches: 2,
			Category: tgff.ForkJoin,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, err := ctg.Analyze(g)
		if err != nil {
			t.Fatal(err)
		}
		s, err := DLS(a, p, Modified())
		if err != nil {
			t.Fatal(err)
		}

		// Build reachability over real + pseudo edges.
		n := g.NumTasks()
		reach := make([][]bool, n)
		adj := make([][]int, n)
		for _, e := range g.Edges() {
			adj[e.From] = append(adj[e.From], int(e.To))
		}
		for _, e := range s.Pseudo {
			adj[e.From] = append(adj[e.From], int(e.To))
		}
		var dfs func(from, at int)
		dfs = func(from, at int) {
			for _, nx := range adj[at] {
				if !reach[from][nx] {
					reach[from][nx] = true
					dfs(from, nx)
				}
			}
		}
		for i := 0; i < n; i++ {
			reach[i] = make([]bool, n)
			dfs(i, i)
		}

		for si := 0; si < a.NumScenarios(); si++ {
			sc := a.Scenario(si)
			for pe := 0; pe < p.NumPEs(); pe++ {
				var actives []ctg.TaskID
				for _, tid := range s.PEOrder[pe] {
					if sc.Active.Get(int(tid)) {
						actives = append(actives, tid)
					}
				}
				for i := 0; i+1 < len(actives); i++ {
					u, v := actives[i], actives[i+1]
					if !reach[u][v] {
						t.Fatalf("seed %d scenario %d PE %d: %d and %d unordered",
							seed, si, pe, u, v)
					}
				}
			}
		}
	}
}

func TestExpectedEnergyMatchesScenarioSum(t *testing.T) {
	// ExpectedEnergy must equal Σ_scenarios prob·(Σ active task energy +
	// Σ active cross-PE comm energy), computed independently here.
	for seed := int64(0); seed < 10; seed++ {
		g, p, err := tgff.Generate(tgff.Config{
			Seed: 900 + seed, Nodes: 16, PEs: 3, Branches: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, err := ctg.Analyze(g)
		if err != nil {
			t.Fatal(err)
		}
		s, err := DLS(a, p, Modified())
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		for si := 0; si < a.NumScenarios(); si++ {
			sc := a.Scenario(si)
			e := 0.0
			sc.Active.ForEach(func(ti int) {
				e += s.TaskEnergy(ctg.TaskID(ti))
			})
			for ei, edge := range g.Edges() {
				if sc.Active.Get(int(edge.From)) && sc.Active.Get(int(edge.To)) {
					e += s.CommEnergy(ei)
				}
			}
			want += sc.Prob * e
		}
		got := s.ExpectedEnergy()
		if math.Abs(got-want) > 1e-6*math.Max(1, want) {
			t.Fatalf("seed %d: ExpectedEnergy = %v, want %v", seed, got, want)
		}
	}
}

func TestScheduleClone(t *testing.T) {
	g, p, err := tgff.Generate(tgff.Config{Seed: 4, Nodes: 12, PEs: 2, Branches: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	s, err := DLS(a, p, Modified())
	if err != nil {
		t.Fatal(err)
	}
	cp := s.Clone()
	cp.Speed[0] = 0.5
	cp.PE[0] = 1
	if s.Speed[0] != 1 {
		t.Fatal("clone speed mutation leaked")
	}
	if s.PE[0] == cp.PE[0] && s.PE[0] == 1 {
		t.Fatal("clone PE mutation leaked")
	}
}

func TestDLSPlatformMismatch(t *testing.T) {
	g, _, err := tgff.Generate(tgff.Config{Seed: 4, Nodes: 12, PEs: 2, Branches: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	p := uniformPlatform(t, 5, 2, 1, 1) // wrong task count
	if _, err := DLS(a, p, Modified()); err == nil {
		t.Fatal("want error on platform/graph size mismatch")
	}
}

func TestEnergyWeightSteersMapping(t *testing.T) {
	// One task; PE0 is slightly faster, PE1 is far cheaper. The paper's
	// delay-only DL picks PE0; a large energy weight flips it to PE1.
	b := ctg.NewBuilder()
	b.AddTask("", ctg.AndNode)
	g, err := b.Build(100)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctg.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	pb := platform.NewBuilder(1, 2)
	pb.SetTask(0, []float64{10, 11}, []float64{20, 2})
	pb.SetAllLinks(1, 0)
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := DLS(a, p, Modified())
	if err != nil {
		t.Fatal(err)
	}
	if plain.PE[0] != 0 {
		t.Fatalf("delay-only DL chose PE %d, want the faster PE0", plain.PE[0])
	}
	opts := Modified()
	opts.EnergyWeight = 1
	green, err := DLS(a, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if green.PE[0] != 1 {
		t.Fatalf("energy-weighted DL chose PE %d, want the cheaper PE1", green.PE[0])
	}
	if err := green.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyWeightReducesEnergyOnAverage(t *testing.T) {
	// Across random heterogeneous workloads, a moderate energy weight must
	// not increase the average expected energy of the nominal mapping.
	var base, green float64
	for seed := int64(0); seed < 15; seed++ {
		g, p, err := tgff.Generate(tgff.Config{
			Seed: 2200 + seed, Nodes: 18, PEs: 3, Branches: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, err := ctg.Analyze(g)
		if err != nil {
			t.Fatal(err)
		}
		s1, err := DLS(a, p, Modified())
		if err != nil {
			t.Fatal(err)
		}
		opts := Modified()
		opts.EnergyWeight = 0.5
		s2, err := DLS(a, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := s2.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		base += s1.ExpectedEnergy()
		green += s2.ExpectedEnergy()
	}
	if green > base {
		t.Fatalf("energy-weighted mapping averaged %v, delay-only %v", green, base)
	}
}
