package sched

import (
	"fmt"
	"math"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/platform"
)

// Options selects between the modified DLS of the paper (ref [17]) and the
// plainer list scheduler used to model reference algorithm 1.
type Options struct {
	// Probabilistic weights the static levels of branch fork nodes by the
	// branch selection probabilities (modified DLS). When false, SL uses
	// the worst case (max over successors) everywhere.
	Probabilistic bool
	// MEOverlap lets mutually exclusive tasks share PE time. When false,
	// every pair of tasks on a PE is serialized.
	MEOverlap bool
	// CommAware models contention on the point-to-point links when
	// computing AT (transfers on one link serialize). When false, links
	// are treated as contention-free; transfers still take time.
	CommAware bool
	// EnergyWeight extends the dynamic level with an energy preference
	// term (an extension beyond the paper, whose DL is delay-only):
	//
	//	DL'(τ, p) = DL(τ, p) + w·prob(τ)·(avgE(τ) − E(τ, p))
	//
	// rewarding PEs that run the task cheaper than average, weighted by
	// how likely the task is to execute at all. Zero (the default)
	// reproduces the paper. Units: w converts energy to the time scale of
	// the dynamic level.
	EnergyWeight float64
}

// Modified returns the options of the paper's modified DLS.
func Modified() Options { return Options{Probabilistic: true, MEOverlap: true, CommAware: true} }

// Plain returns the options modeling reference algorithm 1's ordering:
// worst-case levels, no ME overlap, contention-blind communication.
func Plain() Options { return Options{} }

// commPlan is one planned link transfer of a candidate placement: the edge,
// the directed link, the scheduled transfer window and the scenario set it
// occupies.
type commPlan struct {
	edge  int
	link  [2]int
	start float64
	dur   float64
	scen  ctg.Bitset
}

// Workspace holds the reusable buffers of repeated DLS invocations — the
// adaptive manager re-runs DLS at every full reschedule, and without buffer
// reuse each run pays O(tasks) slice allocations plus one activation-set
// clone per (candidate task, PE, incoming edge) evaluation. The workspace is
// not safe for concurrent use; one per manager (or per worker) is the
// intended pattern.
type Workspace struct {
	// Cancel, when non-nil, is polled once per placement round (each round
	// commits one task, the unit of work between checkpoints); a non-nil
	// return aborts the run with that error before the next placement. The
	// intended value is a context's Err method: the daemon threads request
	// deadlines through here so an overloaded reschedule stops within one
	// round instead of running to completion against a caller that already
	// gave up. Cancellation must be monotone (once non-nil, always non-nil).
	Cancel func() error

	sl           []float64
	scheduled    []bool
	unschedPreds []int
	ready        []ctg.TaskID
	avgEnergy    []float64

	peTL   []timeline
	linkTL map[[2]int]*timeline

	// fullSet and edgeScen are probability-independent per analysis:
	// fullSet is the all-scenarios set, edgeScen caches per real edge the
	// intersection of the endpoint activation sets (the scenario set in
	// which the transfer happens). The cache is keyed to the analysis and
	// rebuilt when a different one shows up.
	fullSet  ctg.Bitset
	edgeScen []ctg.Bitset
	scenFor  *ctg.Analysis

	// plans/bestPlans are the double-buffered candidate transfer plans of
	// the selection loop: evaluate fills plans, a new best swaps the
	// buffers so the winner survives while the loser becomes scratch.
	plans, bestPlans []commPlan
}

// NewWorkspace returns an empty DLS workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// prep sizes the workspace for one DLS run.
func (ws *Workspace) prep(a *ctg.Analysis, p *platform.Platform, n int) {
	if cap(ws.sl) < n {
		ws.sl = make([]float64, n)
		ws.scheduled = make([]bool, n)
		ws.unschedPreds = make([]int, n)
	}
	ws.sl = ws.sl[:n]
	ws.scheduled = ws.scheduled[:n]
	ws.unschedPreds = ws.unschedPreds[:n]
	for t := 0; t < n; t++ {
		ws.scheduled[t] = false
	}
	ws.ready = ws.ready[:0]
	if cap(ws.peTL) < p.NumPEs() {
		ws.peTL = make([]timeline, p.NumPEs())
	}
	ws.peTL = ws.peTL[:p.NumPEs()]
	for pe := range ws.peTL {
		ws.peTL[pe].reset()
	}
	if ws.linkTL == nil {
		ws.linkTL = make(map[[2]int]*timeline)
	}
	for _, tl := range ws.linkTL {
		tl.reset()
	}
	if ws.scenFor != a {
		ws.scenFor = a
		ws.fullSet = ctg.NewBitset(a.NumScenarios())
		for i := 0; i < a.NumScenarios(); i++ {
			ws.fullSet.Set(i)
		}
		ws.edgeScen = make([]ctg.Bitset, a.Graph().NumEdges())
	}
}

// edgeScenOf returns (lazily computing) the scenario set in which real edge
// ei transfers: both endpoints active. Activation sets are
// probability-independent, so the cache stays valid across reschedules.
func (ws *Workspace) edgeScenOf(a *ctg.Analysis, ei int) ctg.Bitset {
	if ws.edgeScen[ei].Len() == 0 {
		e := a.Graph().Edge(ei)
		set := a.ActivationSet(e.From).Clone()
		set.IntersectWith(a.ActivationSet(e.To))
		ws.edgeScen[ei] = set
	}
	return ws.edgeScen[ei]
}

// DLS maps and orders the tasks of g on platform p using dynamic-level list
// scheduling. The returned schedule has all speeds at 1; run a stretching
// pass (package stretch) to assign DVFS speeds.
func DLS(a *ctg.Analysis, p *platform.Platform, opts Options) (*Schedule, error) {
	return DLSInto(a, p, opts, nil)
}

// DLSInto is DLS reusing a Workspace across calls; the returned Schedule is
// still freshly allocated (callers retain schedules — caches, fallbacks — so
// only the transient scheduling state is pooled). A nil workspace allocates
// a private one, making DLSInto(a, p, opts, nil) exactly DLS.
func DLSInto(a *ctg.Analysis, p *platform.Platform, opts Options, ws *Workspace) (*Schedule, error) {
	g := a.Graph()
	n := g.NumTasks()
	if p.NumTasks() != n {
		return nil, fmt.Errorf("sched: platform sized for %d tasks, graph has %d", p.NumTasks(), n)
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	ws.prep(a, p, n)

	sl := staticLevelsInto(g, p, opts.Probabilistic, ws.sl)

	s := &Schedule{
		G:         g,
		A:         a,
		P:         p,
		PE:        make([]int, n),
		Start:     make([]float64, n),
		Speed:     make([]float64, n),
		CommStart: make([]float64, g.NumEdges()),
		LinkOrder: make(map[[2]int][]int),
	}
	for t := range s.Speed {
		s.Speed[t] = 1
		s.PE[t] = -1
	}
	for ei := range s.CommStart {
		s.CommStart[ei] = LocalComm
	}

	peTL := ws.peTL
	tlFor := func(i, j int) *timeline {
		key := [2]int{i, j}
		tl, ok := ws.linkTL[key]
		if !ok {
			tl = &timeline{}
			ws.linkTL[key] = tl
		}
		return tl
	}

	scenOf := func(t ctg.TaskID) ctg.Bitset {
		if opts.MEOverlap {
			return a.ActivationSet(t)
		}
		return ws.fullSet
	}

	scheduled := ws.scheduled
	unschedPreds := ws.unschedPreds
	for t := 0; t < n; t++ {
		unschedPreds[t] = len(g.Pred(ctg.TaskID(t)))
	}
	ready := ws.ready
	for t := 0; t < n; t++ {
		if unschedPreds[t] == 0 {
			ready = append(ready, ctg.TaskID(t))
		}
	}

	// placement evaluates AT(τ, pe): transfer start per incoming cross-PE
	// edge, data-ready time, and the earliest PE fit. The transfer plans
	// land in ws.plans (overwritten per candidate).
	evaluate := func(t ctg.TaskID, pe int) (at float64, ok bool) {
		ws.plans = ws.plans[:0]
		dataReady := 0.0
		for _, ei := range g.Pred(t) {
			e := g.Edge(ei)
			from := e.From
			finish := s.Start[from] + p.WCET(int(from), s.PE[from])
			ct := p.CommTime(e.CommKB, s.PE[from], pe)
			if ct == 0 {
				if finish > dataReady {
					dataReady = finish
				}
				continue
			}
			// A cross-PE dependency that must traverse a down link makes
			// this placement infeasible on the degraded topology.
			if !p.LinkUp(s.PE[from], pe) {
				return 0, false
			}
			link := [2]int{s.PE[from], pe}
			scen := ws.edgeScenOf(a, ei)
			if !opts.MEOverlap {
				scen = ws.fullSet
			}
			cs := finish
			if opts.CommAware {
				cs = tlFor(link[0], link[1]).earliestFit(finish, ct, scen)
			}
			ws.plans = append(ws.plans, commPlan{edge: ei, link: link, start: cs, dur: ct, scen: scen})
			if arr := cs + ct; arr > dataReady {
				dataReady = arr
			}
		}
		at = peTL[pe].earliestFit(dataReady, p.WCET(int(t), pe), scenOf(t))
		return at, true
	}

	// Mean per-task energy across PEs, for the optional energy term.
	var avgEnergy []float64
	if opts.EnergyWeight != 0 {
		if cap(ws.avgEnergy) < n {
			ws.avgEnergy = make([]float64, n)
		}
		avgEnergy = ws.avgEnergy[:n]
		for t := 0; t < n; t++ {
			sum := 0.0
			for pe := 0; pe < p.NumPEs(); pe++ {
				sum += p.Energy(t, pe)
			}
			avgEnergy[t] = sum / float64(p.NumPEs())
		}
	}

	for len(ready) > 0 {
		if ws.Cancel != nil {
			if err := ws.Cancel(); err != nil {
				ws.ready = ready[:0]
				return nil, err
			}
		}
		bestDL := math.Inf(-1)
		bestAT := 0.0
		ws.bestPlans = ws.bestPlans[:0]
		bestIdx, bestPE := -1, -1
		for ri, t := range ready {
			for pe := 0; pe < p.NumPEs(); pe++ {
				if !p.PEAlive(pe) {
					continue
				}
				at, feasible := evaluate(t, pe)
				if !feasible {
					continue
				}
				delta := p.AvgWCET(int(t)) - p.WCET(int(t), pe)
				dl := sl[t] - at + delta
				if opts.EnergyWeight != 0 {
					dl += opts.EnergyWeight * a.ActivationProb(t) *
						(avgEnergy[t] - p.Energy(int(t), pe))
				}
				if dl > bestDL+1e-12 {
					bestDL, bestAT = dl, at
					bestIdx, bestPE = ri, pe
					// Keep the winning plans; the displaced buffer becomes
					// the next candidate's scratch.
					ws.plans, ws.bestPlans = ws.bestPlans, ws.plans
				}
			}
		}
		if bestIdx < 0 {
			// Every (ready task, alive PE) pair was ruled out by link
			// outages — the restricted topology cannot route the graph.
			return nil, &InfeasibleError{Task: int(ready[0]),
				Reason: "no alive PE can receive the task's dependencies over surviving links"}
		}
		t := ready[bestIdx]

		// Commit the placement.
		s.PE[t] = bestPE
		s.Start[t] = bestAT
		peTL[bestPE].add(bestAT, p.WCET(int(t), bestPE), scenOf(t))
		for _, cp := range ws.bestPlans {
			s.CommStart[cp.edge] = cp.start
			s.LinkOrder[cp.link] = append(s.LinkOrder[cp.link], cp.edge)
			tlFor(cp.link[0], cp.link[1]).add(cp.start, cp.dur, cp.scen)
		}
		s.Order = append(s.Order, t)
		scheduled[t] = true

		// Update the ready list.
		ready = append(ready[:bestIdx], ready[bestIdx+1:]...)
		for _, ei := range g.Succ(t) {
			to := g.Edge(ei).To
			unschedPreds[to]--
			if unschedPreds[to] == 0 {
				ready = append(ready, to)
			}
		}
	}

	ws.ready = ready[:0] // hand the (possibly grown) buffer back for reuse
	for t := 0; t < n; t++ {
		if !scheduled[t] {
			return nil, fmt.Errorf("sched: task %d never became ready (graph inconsistency)", t)
		}
		if end := s.Start[t] + p.WCET(t, s.PE[t]); end > s.Makespan {
			s.Makespan = end
		}
	}
	s.sortPEOrder()
	s.sortLinkOrder()
	s.InjectPseudoEdges()
	return s, nil
}

// staticLevels computes SL(τ) bottom-up over a reverse topological order.
// For a non-branching node, SL(τ) = avgWCET(τ) + max over successors; for a
// branch fork node in probabilistic mode, the successor terms are weighted
// by the probability of the guarding condition and summed, matching the
// paper's formula SL(τi) = *WCET(τi) + Σ prob(c_ij)·SL(τj).
func staticLevels(g *ctg.Graph, p *platform.Platform, probabilistic bool) []float64 {
	return staticLevelsInto(g, p, probabilistic, make([]float64, g.NumTasks()))
}

// staticLevelsInto is staticLevels writing into a caller-provided buffer of
// length NumTasks (the "priority buffer" of the reschedule hot path).
func staticLevelsInto(g *ctg.Graph, p *platform.Platform, probabilistic bool, sl []float64) []float64 {
	n := g.NumTasks()
	topo := g.Topo()
	for i := n - 1; i >= 0; i-- {
		t := topo[i]
		base := p.AvgWCET(int(t))
		if probabilistic && g.IsFork(t) {
			sum := 0.0
			for _, ei := range g.Succ(t) {
				e := g.Edge(ei)
				sum += g.CondProb(e.Cond) * sl[e.To]
			}
			sl[t] = base + sum
			continue
		}
		best := 0.0
		for _, ei := range g.Succ(t) {
			if v := sl[g.Edge(ei).To]; v > best {
				best = v
			}
		}
		sl[t] = base + best
	}
	return sl
}
