package sched

import (
	"fmt"
	"math"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/platform"
)

// Options selects between the modified DLS of the paper (ref [17]) and the
// plainer list scheduler used to model reference algorithm 1.
type Options struct {
	// Probabilistic weights the static levels of branch fork nodes by the
	// branch selection probabilities (modified DLS). When false, SL uses
	// the worst case (max over successors) everywhere.
	Probabilistic bool
	// MEOverlap lets mutually exclusive tasks share PE time. When false,
	// every pair of tasks on a PE is serialized.
	MEOverlap bool
	// CommAware models contention on the point-to-point links when
	// computing AT (transfers on one link serialize). When false, links
	// are treated as contention-free; transfers still take time.
	CommAware bool
	// EnergyWeight extends the dynamic level with an energy preference
	// term (an extension beyond the paper, whose DL is delay-only):
	//
	//	DL'(τ, p) = DL(τ, p) + w·prob(τ)·(avgE(τ) − E(τ, p))
	//
	// rewarding PEs that run the task cheaper than average, weighted by
	// how likely the task is to execute at all. Zero (the default)
	// reproduces the paper. Units: w converts energy to the time scale of
	// the dynamic level.
	EnergyWeight float64
}

// Modified returns the options of the paper's modified DLS.
func Modified() Options { return Options{Probabilistic: true, MEOverlap: true, CommAware: true} }

// Plain returns the options modeling reference algorithm 1's ordering:
// worst-case levels, no ME overlap, contention-blind communication.
func Plain() Options { return Options{} }

// DLS maps and orders the tasks of g on platform p using dynamic-level list
// scheduling. The returned schedule has all speeds at 1; run a stretching
// pass (package stretch) to assign DVFS speeds.
func DLS(a *ctg.Analysis, p *platform.Platform, opts Options) (*Schedule, error) {
	g := a.Graph()
	n := g.NumTasks()
	if p.NumTasks() != n {
		return nil, fmt.Errorf("sched: platform sized for %d tasks, graph has %d", p.NumTasks(), n)
	}

	sl := staticLevels(g, p, opts.Probabilistic)

	s := &Schedule{
		G:         g,
		A:         a,
		P:         p,
		PE:        make([]int, n),
		Start:     make([]float64, n),
		Speed:     make([]float64, n),
		CommStart: make([]float64, g.NumEdges()),
		LinkOrder: make(map[[2]int][]int),
	}
	for t := range s.Speed {
		s.Speed[t] = 1
		s.PE[t] = -1
	}
	for ei := range s.CommStart {
		s.CommStart[ei] = LocalComm
	}

	peTL := make([]timeline, p.NumPEs())
	linkTL := make(map[[2]int]*timeline)
	tlFor := func(i, j int) *timeline {
		key := [2]int{i, j}
		tl, ok := linkTL[key]
		if !ok {
			tl = &timeline{}
			linkTL[key] = tl
		}
		return tl
	}

	fullSet := ctg.NewBitset(a.NumScenarios())
	for i := 0; i < a.NumScenarios(); i++ {
		fullSet.Set(i)
	}
	scenOf := func(t ctg.TaskID) ctg.Bitset {
		if opts.MEOverlap {
			return a.ActivationSet(t)
		}
		return fullSet
	}

	scheduled := make([]bool, n)
	unschedPreds := make([]int, n)
	for t := 0; t < n; t++ {
		unschedPreds[t] = len(g.Pred(ctg.TaskID(t)))
	}
	ready := make([]ctg.TaskID, 0, n)
	for t := 0; t < n; t++ {
		if unschedPreds[t] == 0 {
			ready = append(ready, ctg.TaskID(t))
		}
	}

	// placement evaluates AT(τ, pe): transfer start per incoming cross-PE
	// edge, data-ready time, and the earliest PE fit.
	type commPlan struct {
		edge  int
		link  [2]int
		start float64
		dur   float64
		scen  ctg.Bitset
	}
	evaluate := func(t ctg.TaskID, pe int) (at float64, plans []commPlan, ok bool) {
		dataReady := 0.0
		for _, ei := range g.Pred(t) {
			e := g.Edge(ei)
			from := e.From
			finish := s.Start[from] + p.WCET(int(from), s.PE[from])
			ct := p.CommTime(e.CommKB, s.PE[from], pe)
			if ct == 0 {
				if finish > dataReady {
					dataReady = finish
				}
				continue
			}
			// A cross-PE dependency that must traverse a down link makes
			// this placement infeasible on the degraded topology.
			if !p.LinkUp(s.PE[from], pe) {
				return 0, nil, false
			}
			link := [2]int{s.PE[from], pe}
			scen := a.ActivationSet(from).Clone()
			scen.IntersectWith(a.ActivationSet(t))
			if !opts.MEOverlap {
				scen = fullSet
			}
			cs := finish
			if opts.CommAware {
				cs = tlFor(link[0], link[1]).earliestFit(finish, ct, scen)
			}
			plans = append(plans, commPlan{edge: ei, link: link, start: cs, dur: ct, scen: scen})
			if arr := cs + ct; arr > dataReady {
				dataReady = arr
			}
		}
		at = peTL[pe].earliestFit(dataReady, p.WCET(int(t), pe), scenOf(t))
		return at, plans, true
	}

	// Mean per-task energy across PEs, for the optional energy term.
	avgEnergy := make([]float64, n)
	if opts.EnergyWeight != 0 {
		for t := 0; t < n; t++ {
			sum := 0.0
			for pe := 0; pe < p.NumPEs(); pe++ {
				sum += p.Energy(t, pe)
			}
			avgEnergy[t] = sum / float64(p.NumPEs())
		}
	}

	for len(ready) > 0 {
		bestDL := math.Inf(-1)
		bestAT := 0.0
		var bestPlans []commPlan
		bestIdx, bestPE := -1, -1
		for ri, t := range ready {
			for pe := 0; pe < p.NumPEs(); pe++ {
				if !p.PEAlive(pe) {
					continue
				}
				at, plans, feasible := evaluate(t, pe)
				if !feasible {
					continue
				}
				delta := p.AvgWCET(int(t)) - p.WCET(int(t), pe)
				dl := sl[t] - at + delta
				if opts.EnergyWeight != 0 {
					dl += opts.EnergyWeight * a.ActivationProb(t) *
						(avgEnergy[t] - p.Energy(int(t), pe))
				}
				if dl > bestDL+1e-12 {
					bestDL, bestAT, bestPlans = dl, at, plans
					bestIdx, bestPE = ri, pe
				}
			}
		}
		if bestIdx < 0 {
			// Every (ready task, alive PE) pair was ruled out by link
			// outages — the restricted topology cannot route the graph.
			return nil, &InfeasibleError{Task: int(ready[0]),
				Reason: "no alive PE can receive the task's dependencies over surviving links"}
		}
		t := ready[bestIdx]

		// Commit the placement.
		s.PE[t] = bestPE
		s.Start[t] = bestAT
		peTL[bestPE].add(bestAT, p.WCET(int(t), bestPE), scenOf(t))
		for _, cp := range bestPlans {
			s.CommStart[cp.edge] = cp.start
			s.LinkOrder[cp.link] = append(s.LinkOrder[cp.link], cp.edge)
			tlFor(cp.link[0], cp.link[1]).add(cp.start, cp.dur, cp.scen)
		}
		s.Order = append(s.Order, t)
		scheduled[t] = true

		// Update the ready list.
		ready = append(ready[:bestIdx], ready[bestIdx+1:]...)
		for _, ei := range g.Succ(t) {
			to := g.Edge(ei).To
			unschedPreds[to]--
			if unschedPreds[to] == 0 {
				ready = append(ready, to)
			}
		}
	}

	for t := 0; t < n; t++ {
		if !scheduled[t] {
			return nil, fmt.Errorf("sched: task %d never became ready (graph inconsistency)", t)
		}
		if end := s.Start[t] + p.WCET(t, s.PE[t]); end > s.Makespan {
			s.Makespan = end
		}
	}
	s.sortPEOrder()
	s.sortLinkOrder()
	s.InjectPseudoEdges()
	return s, nil
}

// staticLevels computes SL(τ) bottom-up over a reverse topological order.
// For a non-branching node, SL(τ) = avgWCET(τ) + max over successors; for a
// branch fork node in probabilistic mode, the successor terms are weighted
// by the probability of the guarding condition and summed, matching the
// paper's formula SL(τi) = *WCET(τi) + Σ prob(c_ij)·SL(τj).
func staticLevels(g *ctg.Graph, p *platform.Platform, probabilistic bool) []float64 {
	n := g.NumTasks()
	sl := make([]float64, n)
	topo := g.Topo()
	for i := n - 1; i >= 0; i-- {
		t := topo[i]
		base := p.AvgWCET(int(t))
		if probabilistic && g.IsFork(t) {
			sum := 0.0
			for _, ei := range g.Succ(t) {
				e := g.Edge(ei)
				sum += g.CondProb(e.Cond) * sl[e.To]
			}
			sl[t] = base + sum
			continue
		}
		best := 0.0
		for _, ei := range g.Succ(t) {
			if v := sl[g.Edge(ei).To]; v > best {
				best = v
			}
		}
		sl[t] = base + best
	}
	return sl
}
