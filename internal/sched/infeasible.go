package sched

import "fmt"

// InfeasibleError is the typed failure of a list scheduler that ran out of
// hardware: on a restricted platform (dead PEs, down links) some ready task
// had no placement whose dependencies could be routed. The adaptive manager
// detects it with errors.As to distinguish "this degraded topology cannot
// host the workload" from a programming error, and escalates accordingly.
type InfeasibleError struct {
	// Task is the task that could not be placed.
	Task int
	// Reason describes what made every placement infeasible.
	Reason string
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("sched: no feasible placement for task %d: %s", e.Task, e.Reason)
}
