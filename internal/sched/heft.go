package sched

import (
	"fmt"
	"math"
	"sort"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/platform"
)

// HEFT maps and orders the tasks with the Heterogeneous Earliest Finish
// Time heuristic (Topcuoglu et al., 2002) adapted to conditional task
// graphs: tasks are prioritized by their upward rank (mean execution plus
// mean communication along the heaviest successor chain) and greedily
// placed on the PE that finishes them earliest, sharing PE time between
// mutually exclusive tasks exactly like the modified DLS does.
//
// HEFT is not part of the paper — it is the de-facto list-scheduling
// baseline of the wider literature, included so downstream users can
// compare the paper's DLS variant against a familiar reference on the same
// platform model. The returned schedule feeds the stretchers and the
// simulator like any other.
func HEFT(a *ctg.Analysis, p *platform.Platform) (*Schedule, error) {
	g := a.Graph()
	n := g.NumTasks()
	if p.NumTasks() != n {
		return nil, fmt.Errorf("sched: platform sized for %d tasks, graph has %d", p.NumTasks(), n)
	}

	// Mean communication cost per edge over distinct usable PE pairs (alive
	// endpoints, link up) — identical to the all-pairs mean on a healthy
	// platform.
	alive := p.NumAlivePEs()
	meanComm := func(kb float64) float64 {
		if kb == 0 || alive <= 1 {
			return 0
		}
		sum := 0.0
		pairs := 0
		for i := 0; i < p.NumPEs(); i++ {
			for j := 0; j < p.NumPEs(); j++ {
				if i != j && p.PEAlive(i) && p.PEAlive(j) && p.LinkUp(i, j) {
					sum += p.CommTime(kb, i, j)
					pairs++
				}
			}
		}
		if pairs == 0 {
			return 0
		}
		// Off-diagonal mean scaled by the chance the endpoints differ.
		frac := float64(alive-1) / float64(alive)
		return sum / float64(pairs) * frac
	}

	// Upward ranks over reverse topological order.
	rank := make([]float64, n)
	topo := g.Topo()
	for i := n - 1; i >= 0; i-- {
		t := topo[i]
		best := 0.0
		for _, ei := range g.Succ(t) {
			e := g.Edge(ei)
			if v := meanComm(e.CommKB) + rank[e.To]; v > best {
				best = v
			}
		}
		rank[t] = p.AvgWCET(int(t)) + best
	}

	// Priority order: rank descending (stable by ID); precedence holds
	// because a predecessor's rank strictly exceeds its successors'.
	order := make([]ctg.TaskID, n)
	for i := range order {
		order[i] = ctg.TaskID(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		if rank[order[i]] != rank[order[j]] {
			return rank[order[i]] > rank[order[j]]
		}
		return order[i] < order[j]
	})

	s := &Schedule{
		G:         g,
		A:         a,
		P:         p,
		PE:        make([]int, n),
		Start:     make([]float64, n),
		Speed:     make([]float64, n),
		CommStart: make([]float64, g.NumEdges()),
		LinkOrder: map[[2]int][]int{},
	}
	for t := range s.Speed {
		s.Speed[t] = 1
		s.PE[t] = -1
	}
	for ei := range s.CommStart {
		s.CommStart[ei] = LocalComm
	}

	peTL := make([]timeline, p.NumPEs())
	linkTL := map[[2]int]*timeline{}
	tlFor := func(i, j int) *timeline {
		key := [2]int{i, j}
		tl, ok := linkTL[key]
		if !ok {
			tl = &timeline{}
			linkTL[key] = tl
		}
		return tl
	}

	for _, t := range order {
		type plan struct {
			edge  int
			link  [2]int
			start float64
			dur   float64
			scen  ctg.Bitset
		}
		bestEFT := math.Inf(1)
		bestStart := 0.0
		bestPE := -1
		var bestPlans []plan
		for pe := 0; pe < p.NumPEs(); pe++ {
			if !p.PEAlive(pe) {
				continue
			}
			dataReady := 0.0
			var plans []plan
			feasible := true
			for _, ei := range g.Pred(t) {
				e := g.Edge(ei)
				if s.PE[e.From] < 0 {
					feasible = false // predecessor not placed (cannot happen: ranks respect precedence)
					break
				}
				finish := s.Start[e.From] + p.WCET(int(e.From), s.PE[e.From])
				ct := p.CommTime(e.CommKB, s.PE[e.From], pe)
				if ct == 0 {
					if finish > dataReady {
						dataReady = finish
					}
					continue
				}
				if !p.LinkUp(s.PE[e.From], pe) {
					feasible = false // dependency cannot be routed to this PE
					break
				}
				scen := a.ActivationSet(e.From).Clone()
				scen.IntersectWith(a.ActivationSet(t))
				link := [2]int{s.PE[e.From], pe}
				cs := tlFor(link[0], link[1]).earliestFit(finish, ct, scen)
				plans = append(plans, plan{edge: ei, link: link, start: cs, dur: ct, scen: scen})
				if arr := cs + ct; arr > dataReady {
					dataReady = arr
				}
			}
			if !feasible {
				continue
			}
			start := peTL[pe].earliestFit(dataReady, p.WCET(int(t), pe), a.ActivationSet(t))
			if eft := start + p.WCET(int(t), pe); eft < bestEFT {
				bestEFT, bestStart, bestPE, bestPlans = eft, start, pe, plans
			}
		}
		if bestPE < 0 {
			return nil, &InfeasibleError{Task: int(t),
				Reason: "no alive PE can receive the task's dependencies over surviving links"}
		}
		s.PE[t] = bestPE
		s.Start[t] = bestStart
		peTL[bestPE].add(bestStart, p.WCET(int(t), bestPE), a.ActivationSet(t))
		for _, pl := range bestPlans {
			s.CommStart[pl.edge] = pl.start
			s.LinkOrder[pl.link] = append(s.LinkOrder[pl.link], pl.edge)
			tlFor(pl.link[0], pl.link[1]).add(pl.start, pl.dur, pl.scen)
		}
		s.Order = append(s.Order, t)
		if end := bestEFT; end > s.Makespan {
			s.Makespan = end
		}
	}
	s.sortPEOrder()
	s.sortLinkOrder()
	s.InjectPseudoEdges()
	return s, nil
}
