package sched

import (
	"fmt"
	"sort"
	"strings"

	"ctgdvfs/internal/ctg"
)

// Gantt renders the nominal (full-speed) schedule as a per-PE text chart:
// one row per PE, time flowing right, each task drawn over its reserved
// interval with its ID. Overlapping mutually exclusive tasks get stacked
// sub-rows. Width is the chart width in characters (0 means 100).
func (s *Schedule) Gantt(width int) string {
	if width <= 0 {
		width = 100
	}
	if s.Makespan <= 0 {
		return "(empty schedule)\n"
	}
	scale := float64(width) / s.Makespan

	var sb strings.Builder
	fmt.Fprintf(&sb, "time 0 .. %.1f (one column ≈ %.2f)\n", s.Makespan, 1/scale)
	for pe := 0; pe < s.P.NumPEs(); pe++ {
		rows := s.ganttRows(pe, scale, width)
		for ri, row := range rows {
			label := fmt.Sprintf("PE%-2d", pe)
			if ri > 0 {
				label = "    " // stacked exclusive alternatives
			}
			fmt.Fprintf(&sb, "%s |%s|\n", label, string(row))
		}
		if len(rows) == 0 {
			fmt.Fprintf(&sb, "PE%-2d |%s|\n", pe, strings.Repeat(" ", width))
		}
	}
	return sb.String()
}

// ganttRows lays the PE's tasks into the fewest rows such that no two tasks
// in one row overlap in chart columns (mutually exclusive tasks overlap in
// time, so they stack).
func (s *Schedule) ganttRows(pe int, scale float64, width int) [][]rune {
	type span struct {
		task     ctg.TaskID
		from, to int // inclusive columns
	}
	var spans []span
	for _, t := range s.PEOrder[pe] {
		from := int(s.Start[t] * scale)
		to := int((s.Start[t] + s.P.WCET(int(t), pe)) * scale)
		if to >= width {
			to = width - 1
		}
		if from > to {
			from = to
		}
		spans = append(spans, span{task: t, from: from, to: to})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].from < spans[j].from })

	var rows [][]rune
	rowEnd := []int{}
	for _, sp := range spans {
		ri := -1
		for i, end := range rowEnd {
			if sp.from > end {
				ri = i
				break
			}
		}
		if ri < 0 {
			rows = append(rows, []rune(strings.Repeat(" ", width)))
			rowEnd = append(rowEnd, -1)
			ri = len(rows) - 1
		}
		label := fmt.Sprintf("%d", sp.task)
		for c := sp.from; c <= sp.to; c++ {
			ch := '='
			if li := c - sp.from; li < len(label) {
				ch = rune(label[li])
			}
			rows[ri][c] = ch
		}
		rowEnd[ri] = sp.to
	}
	return rows
}
