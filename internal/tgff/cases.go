package tgff

import "fmt"

// Case names one generated benchmark with the paper's a/b/c triplet
// notation: a tasks, b PEs, c branch fork nodes.
type Case struct {
	Name   string
	Config Config
}

// Table1Cases returns the five random CTGs of the paper's Table 1:
// 25/3/3, 16/3/1, 15/4/2, 15/4/2, 25/4/3 (all Category 1; the paper does
// not state the category for Table 1, and its graphs 1–5 elsewhere are the
// fork-join family).
func Table1Cases() []Case {
	triplets := []struct {
		nodes, pes, branches int
	}{
		{25, 3, 3}, {16, 3, 1}, {15, 4, 2}, {15, 4, 2}, {25, 4, 3},
	}
	out := make([]Case, len(triplets))
	for i, tr := range triplets {
		out[i] = Case{
			Name: caseName(i+1, tr.nodes, tr.pes, tr.branches),
			Config: Config{
				Seed:     int64(1000 + i),
				Nodes:    tr.nodes,
				PEs:      tr.pes,
				Branches: tr.branches,
				Category: ForkJoin,
			},
		}
	}
	return out
}

// Table4Cases returns the ten random CTGs of Tables 4, 5 and Figure 6:
// graphs 1–5 are Category 1 (fork-join, nested conditionals) and graphs
// 6–10 are Category 2 (flat), with the triplets the paper lists.
func Table4Cases() []Case {
	triplets := []struct {
		nodes, pes, branches int
	}{
		{25, 3, 3}, {16, 3, 1}, {15, 4, 2}, {15, 4, 1}, {25, 4, 3},
	}
	out := make([]Case, 0, 10)
	for i, tr := range triplets {
		out = append(out, Case{
			Name: caseName(i+1, tr.nodes, tr.pes, tr.branches),
			Config: Config{
				Seed:     int64(2000 + i),
				Nodes:    tr.nodes,
				PEs:      tr.pes,
				Branches: tr.branches,
				Category: ForkJoin,
			},
		})
	}
	for i, tr := range triplets {
		out = append(out, Case{
			Name: caseName(i+6, tr.nodes, tr.pes, tr.branches),
			Config: Config{
				Seed:     int64(3000 + i),
				Nodes:    tr.nodes,
				PEs:      tr.pes,
				Branches: tr.branches,
				Category: Flat,
			},
		})
	}
	return out
}

func caseName(idx, nodes, pes, branches int) string {
	return fmt.Sprintf("%d (%d/%d/%d)", idx, nodes, pes, branches)
}
