// Package tgff generates random conditional task graphs and matching MPSoC
// platforms, standing in for the "Task Graphs For Free" tool (Dick, Rhodes,
// Wolf, 1998) that the paper uses to produce its random benchmarks. The
// generator is seeded and fully deterministic.
//
// Two graph families match the paper's §IV taxonomy:
//
//   - Category 1: fork-join graphs with (possibly nested) conditional
//     branches — the family the MPEG and cruise-control CTGs belong to.
//   - Category 2: flat layered graphs whose conditional arms neither nest
//     nor re-join into fork-join diamonds.
//
// Node, PE and branch-fork counts are exact, so the paper's (a/b/c) triplets
// — e.g. 25/3/3 — can be reproduced verbatim.
package tgff

import (
	"fmt"
	"math/rand"

	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/platform"
)

// Category selects the structural family of the generated CTG.
type Category int

const (
	// ForkJoin is the paper's Category 1: nested conditional fork-join.
	ForkJoin Category = 1
	// Flat is the paper's Category 2: no fork-join, no nesting.
	Flat Category = 2
)

// Config parameterizes one generated benchmark. Zero-valued knobs take the
// documented defaults.
type Config struct {
	Seed     int64
	Nodes    int // exact task count (a of the paper's a/b/c triplet)
	PEs      int // PE count (b)
	Branches int // exact branch-fork count (c)
	Category Category

	// WCETMin/WCETMax bound the per-task mean WCET (defaults 5 and 40).
	WCETMin, WCETMax float64
	// Hetero is the relative per-PE WCET variation (default 0.3, i.e.
	// each PE runs a task within ±30% of its mean).
	Hetero float64
	// CommMin/CommMax bound edge communication volumes in KB (defaults 2
	// and 16).
	CommMin, CommMax float64
	// BandMin/BandMax bound link bandwidths in KB per time unit (defaults
	// 4 and 12).
	BandMin, BandMax float64
	// TxEnergyPerKB is the link transmission energy (default 0.02).
	TxEnergyPerKB float64
	// EnergyPerTime scales nominal task energy relative to WCET (default
	// 1.0, with ±20% jitter per task/PE).
	EnergyPerTime float64
	// ArmContrast makes the two arms of each conditional construct differ
	// in weight: one arm's tasks get their WCET multiplied by
	// ArmContrast, the other's divided by it (which arm is heavy is
	// random). This gives the leaf minterms the strongly different
	// energies the paper's Tables 4/5 rely on ("the profiled average
	// branch probability favors the minterm with the lowest/highest
	// energy"). Default 2.5; set negative for symmetric arms.
	ArmContrast float64
	// Deadline is the provisional CTG deadline; callers usually schedule
	// once and rebuild with a factor of the resulting makespan. Default:
	// Nodes × WCETMax (very loose).
	Deadline float64
}

func (c *Config) applyDefaults() {
	if c.Category == 0 {
		c.Category = ForkJoin
	}
	if c.WCETMin == 0 {
		c.WCETMin = 5
	}
	if c.WCETMax == 0 {
		c.WCETMax = 40
	}
	if c.Hetero == 0 {
		c.Hetero = 0.3
	}
	if c.CommMin == 0 {
		c.CommMin = 2
	}
	if c.CommMax == 0 {
		c.CommMax = 16
	}
	if c.BandMin == 0 {
		c.BandMin = 4
	}
	if c.BandMax == 0 {
		c.BandMax = 12
	}
	if c.TxEnergyPerKB == 0 {
		c.TxEnergyPerKB = 0.02
	}
	if c.EnergyPerTime == 0 {
		c.EnergyPerTime = 1
	}
	if c.ArmContrast == 0 {
		c.ArmContrast = 2.5
	}
	if c.Deadline == 0 {
		c.Deadline = float64(c.Nodes) * c.WCETMax
	}
}

func (c *Config) validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("tgff: need at least 2 nodes, got %d", c.Nodes)
	}
	if c.PEs < 1 {
		return fmt.Errorf("tgff: need at least 1 PE, got %d", c.PEs)
	}
	if c.Branches < 0 {
		return fmt.Errorf("tgff: negative branch count %d", c.Branches)
	}
	// Each conditional construct needs two one-task arms plus a join
	// (Category 1), or two arms plus a distinct base node to fork from
	// (Category 2), beyond the entry chain.
	minNodes := 2 + 3*c.Branches
	if c.Nodes < minNodes {
		return fmt.Errorf("tgff: %d nodes cannot host %d branches (need ≥ %d)", c.Nodes, c.Branches, minNodes)
	}
	if c.Category != ForkJoin && c.Category != Flat {
		return fmt.Errorf("tgff: unknown category %d", c.Category)
	}
	return nil
}

// Generate builds the CTG and a matching platform for the configuration.
func Generate(cfg Config) (*ctg.Graph, *platform.Platform, error) {
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var g *ctg.Graph
	var scale []float64
	var err error
	switch cfg.Category {
	case ForkJoin:
		g, scale, err = genForkJoin(&cfg, rng)
	case Flat:
		g, scale, err = genFlat(&cfg, rng)
	}
	if err != nil {
		return nil, nil, err
	}
	p, err := genPlatform(&cfg, rng, scale)
	if err != nil {
		return nil, nil, err
	}
	return g, p, nil
}

func (c *Config) comm(rng *rand.Rand) float64 {
	return c.CommMin + rng.Float64()*(c.CommMax-c.CommMin)
}

// armScale returns the WCET multiplier for a conditional arm.
func (c *Config) armScale(heavy bool) float64 {
	contrast := c.ArmContrast
	if contrast < 1 {
		return 1
	}
	if heavy {
		return contrast
	}
	return 1 / contrast
}

func randProb(rng *rand.Rand) []float64 {
	p := 0.2 + 0.6*rng.Float64()
	return []float64{p, 1 - p}
}

// genForkJoin builds a Category 1 graph: a spine of segments where each
// segment is a chain task, an unconditional parallel fork-join, or a
// conditional fork-join whose arms may recursively embed further
// conditionals (nesting).
func genForkJoin(cfg *Config, rng *rand.Rand) (*ctg.Graph, []float64, error) {
	b := ctg.NewBuilder()
	nodesLeft := cfg.Nodes
	branchesLeft := cfg.Branches

	var scale []float64
	newTask := func(kind ctg.Kind, sc float64) ctg.TaskID {
		nodesLeft--
		scale = append(scale, sc)
		return b.AddTask("", kind)
	}

	tail := newTask(ctg.AndNode, 1) // single source

	// buildCond turns `entry` into a fork: two conditional arms that re-join
	// at an or-node. Arms are chains that may nest another conditional.
	// Returns the join task.
	//
	// Budget contract: on entry nodesLeft ≥ 3·branchesLeft + extra (three
	// nodes per outstanding branch — two arm tasks and a join — plus the
	// caller's own reservation); the same inequality holds on exit with the
	// then-current branchesLeft. This keeps every outstanding conditional
	// and the enclosing arms affordable regardless of nesting depth.
	var buildCond func(entry ctg.TaskID, extra int) ctg.TaskID
	buildCond = func(entry ctg.TaskID, extra int) ctg.TaskID {
		branchesLeft--
		join := newTask(ctg.OrNode, 1)
		b.SetBranchProbs(entry, randProb(rng))
		heavy := rng.Intn(2) // which arm carries the heavy workload
		for outcome := 0; outcome < 2; outcome++ {
			armScale := cfg.armScale(outcome == heavy)
			reserve := 3*branchesLeft + extra
			if outcome == 0 {
				reserve++ // the other arm still needs its mandatory task
			}
			armMax := nodesLeft - reserve
			armLen := 1
			if armMax > 1 {
				armLen += rng.Intn(min(armMax-1, 3) + 1)
			}
			last := entry
			for i := 0; i < armLen; i++ {
				t := newTask(ctg.AndNode, armScale)
				if i == 0 {
					b.AddCondEdge(entry, t, cfg.comm(rng), outcome)
				} else {
					b.AddEdge(last, t, cfg.comm(rng))
				}
				last = t
			}
			// Nest another conditional inside this arm?
			nestReserve := extra
			if outcome == 0 {
				nestReserve++
			}
			if branchesLeft > 0 && nodesLeft >= 3*branchesLeft+nestReserve && rng.Float64() < 0.6 {
				last = buildCond(last, nestReserve)
			}
			b.AddEdge(last, join, cfg.comm(rng))
		}
		return join
	}

	for nodesLeft > 0 {
		switch {
		case branchesLeft > 0 && nodesLeft >= 3*branchesLeft:
			tail = buildCond(tail, 0)
		case nodesLeft >= 3 && branchesLeft == 0 && rng.Float64() < 0.45:
			// Unconditional parallel fork-join.
			k := 2
			if nodesLeft >= 4 && rng.Float64() < 0.5 {
				k = 3
			}
			join := newTask(ctg.AndNode, 1)
			for i := 0; i < k-1; i++ {
				t := newTask(ctg.AndNode, 1)
				b.AddEdge(tail, t, cfg.comm(rng))
				b.AddEdge(t, join, cfg.comm(rng))
			}
			// One direct edge keeps the join connected even when k-1
			// parallel tasks exhaust the budget.
			b.AddEdge(tail, join, cfg.comm(rng))
			tail = join
		default:
			t := newTask(ctg.AndNode, 1)
			b.AddEdge(tail, t, cfg.comm(rng))
			tail = t
		}
	}
	g, err := b.Build(cfg.Deadline)
	return g, scale, err
}

// genFlat builds a Category 2 graph: a layered unconditional DAG with
// `Branches` forks whose two conditional arms are short chains running to
// sinks — no re-joining or-nodes and no nesting.
func genFlat(cfg *Config, rng *rand.Rand) (*ctg.Graph, []float64, error) {
	b := ctg.NewBuilder()
	nodesLeft := cfg.Nodes

	// Decide arm lengths first so the base DAG gets the remaining nodes.
	type armPlan struct{ len0, len1 int }
	plans := make([]armPlan, cfg.Branches)
	armTotal := 0
	for i := range plans {
		plans[i] = armPlan{1, 1}
		armTotal += 2
	}
	// Spend leftover nodes extending arms, up to 2 tasks per arm.
	for i := range plans {
		if nodesLeft-armTotal-2-cfg.Branches > 0 && rng.Float64() < 0.5 {
			plans[i].len0++
			armTotal++
		}
		if nodesLeft-armTotal-2-cfg.Branches > 0 && rng.Float64() < 0.5 {
			plans[i].len1++
			armTotal++
		}
	}
	baseN := nodesLeft - armTotal
	scale := make([]float64, 0, cfg.Nodes)
	base := make([]ctg.TaskID, baseN)
	for i := range base {
		base[i] = b.AddTask("", ctg.AndNode)
		scale = append(scale, 1)
		if i > 0 {
			// Every base node depends on 1–2 earlier base nodes.
			p := rng.Intn(i)
			b.AddEdge(base[p], base[i], cfg.comm(rng))
			if i > 1 && rng.Float64() < 0.35 {
				q := rng.Intn(i)
				if q != p {
					b.AddEdge(base[q], base[i], cfg.comm(rng))
				}
			}
		}
	}

	// Choose distinct fork positions among the base nodes (not the last,
	// so arms always have room after their fork in topological terms).
	perm := rng.Perm(baseN)
	forks := perm[:cfg.Branches]
	for bi, fi := range forks {
		fork := base[fi]
		b.SetBranchProbs(fork, randProb(rng))
		heavy := rng.Intn(2)
		for outcome := 0; outcome < 2; outcome++ {
			armScale := cfg.armScale(outcome == heavy)
			armLen := plans[bi].len0
			if outcome == 1 {
				armLen = plans[bi].len1
			}
			last := fork
			for i := 0; i < armLen; i++ {
				t := b.AddTask("", ctg.AndNode)
				scale = append(scale, armScale)
				if i == 0 {
					b.AddCondEdge(fork, t, cfg.comm(rng), outcome)
				} else {
					b.AddEdge(last, t, cfg.comm(rng))
				}
				last = t
			}
		}
	}
	g, err := b.Build(cfg.Deadline)
	return g, scale, err
}

// genPlatform builds a heterogeneous platform consistent with the paper's
// model: per-task per-PE WCET and energy at nominal VDD, and point-to-point
// links with per-direction bandwidth.
func genPlatform(cfg *Config, rng *rand.Rand, scale []float64) (*platform.Platform, error) {
	tasks := len(scale)
	pb := platform.NewBuilder(tasks, cfg.PEs)
	for t := 0; t < tasks; t++ {
		mean := (cfg.WCETMin + rng.Float64()*(cfg.WCETMax-cfg.WCETMin)) * scale[t]
		w := make([]float64, cfg.PEs)
		e := make([]float64, cfg.PEs)
		for pe := 0; pe < cfg.PEs; pe++ {
			w[pe] = mean * (1 - cfg.Hetero + 2*cfg.Hetero*rng.Float64())
			e[pe] = w[pe] * cfg.EnergyPerTime * (0.8 + 0.4*rng.Float64())
		}
		pb.SetTask(t, w, e)
	}
	for i := 0; i < cfg.PEs; i++ {
		for j := 0; j < cfg.PEs; j++ {
			if i != j {
				bw := cfg.BandMin + rng.Float64()*(cfg.BandMax-cfg.BandMin)
				pb.SetLink(i, j, bw, cfg.TxEnergyPerKB)
			}
		}
	}
	return pb.Build()
}
