package tgff

import (
	"testing"

	"ctgdvfs/internal/ctg"
)

func TestGenerateExactCounts(t *testing.T) {
	for _, cat := range []Category{ForkJoin, Flat} {
		for seed := int64(0); seed < 20; seed++ {
			cfg := Config{
				Seed:     seed,
				Nodes:    12 + int(seed)%20,
				PEs:      3,
				Branches: int(seed) % 3,
				Category: cat,
			}
			if cfg.Nodes < 2+3*cfg.Branches {
				continue
			}
			g, p, err := Generate(cfg)
			if err != nil {
				t.Fatalf("cat %d seed %d: %v", cat, seed, err)
			}
			if g.NumTasks() != cfg.Nodes {
				t.Fatalf("cat %d seed %d: got %d tasks, want %d", cat, seed, g.NumTasks(), cfg.Nodes)
			}
			if g.NumForks() != cfg.Branches {
				t.Fatalf("cat %d seed %d: got %d forks, want %d", cat, seed, g.NumForks(), cfg.Branches)
			}
			if p.NumTasks() != cfg.Nodes || p.NumPEs() != cfg.PEs {
				t.Fatalf("cat %d seed %d: platform %d×%d", cat, seed, p.NumTasks(), p.NumPEs())
			}
			if _, err := ctg.Analyze(g); err != nil {
				t.Fatalf("cat %d seed %d: analyze: %v", cat, seed, err)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Nodes: 25, PEs: 3, Branches: 3}
	g1, p1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, p2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("edge counts differ between identical seeds")
	}
	for i := range g1.Edges() {
		if g1.Edge(i) != g2.Edge(i) {
			t.Fatalf("edge %d differs: %+v vs %+v", i, g1.Edge(i), g2.Edge(i))
		}
	}
	for task := 0; task < g1.NumTasks(); task++ {
		for pe := 0; pe < cfg.PEs; pe++ {
			if p1.WCET(task, pe) != p2.WCET(task, pe) {
				t.Fatal("platform WCETs differ between identical seeds")
			}
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	g1, _, err := Generate(Config{Seed: 1, Nodes: 25, PEs: 3, Branches: 3})
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := Generate(Config{Seed: 2, Nodes: 25, PEs: 3, Branches: 3})
	if err != nil {
		t.Fatal(err)
	}
	same := g1.NumEdges() == g2.NumEdges()
	if same {
		for i := range g1.Edges() {
			if g1.Edge(i) != g2.Edge(i) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestForkJoinNesting(t *testing.T) {
	// With several branches and generous nodes, at least one seed must
	// produce nesting: a fork that is only active in some scenarios (i.e.
	// activation probability < 1).
	nested := false
	for seed := int64(0); seed < 30 && !nested; seed++ {
		g, _, err := Generate(Config{Seed: seed, Nodes: 25, PEs: 3, Branches: 3, Category: ForkJoin})
		if err != nil {
			t.Fatal(err)
		}
		a, err := ctg.Analyze(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range g.Forks() {
			if a.ActivationProb(f) < 1 {
				nested = true
			}
		}
	}
	if !nested {
		t.Fatal("Category 1 generator never produced a nested conditional in 30 seeds")
	}
}

func TestFlatHasNoNesting(t *testing.T) {
	// Category 2 forks must all be unconditionally active (no nesting),
	// and no or-nodes exist (no re-join).
	for seed := int64(0); seed < 20; seed++ {
		g, _, err := Generate(Config{Seed: seed, Nodes: 20, PEs: 4, Branches: 3, Category: Flat})
		if err != nil {
			t.Fatal(err)
		}
		a, err := ctg.Analyze(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range g.Forks() {
			if a.ActivationProb(f) != 1 {
				t.Fatalf("seed %d: flat fork %d has activation prob %v", seed, f, a.ActivationProb(f))
			}
		}
		for _, task := range g.Tasks() {
			if task.Kind == ctg.OrNode {
				t.Fatalf("seed %d: flat graph contains or-node %d", seed, task.ID)
			}
		}
		// Exactly 2^branches scenarios (independent two-way forks).
		if want := 1 << 3; a.NumScenarios() != want {
			t.Fatalf("seed %d: %d scenarios, want %d", seed, a.NumScenarios(), want)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	cases := []Config{
		{Seed: 1, Nodes: 1, PEs: 1},                             // too few nodes
		{Seed: 1, Nodes: 10, PEs: 0},                            // no PEs
		{Seed: 1, Nodes: 10, PEs: 2, Branches: -1},              // negative branches
		{Seed: 1, Nodes: 7, PEs: 2, Branches: 2},                // nodes can't host branches
		{Seed: 1, Nodes: 10, PEs: 2, Branches: 1, Category: 77}, // bad category
	}
	for i, cfg := range cases {
		if _, _, err := Generate(cfg); err == nil {
			t.Fatalf("case %d: want error", i)
		}
	}
}

func TestPaperCases(t *testing.T) {
	t1 := Table1Cases()
	if len(t1) != 5 {
		t.Fatalf("Table1Cases: %d cases", len(t1))
	}
	if t1[0].Name != "1 (25/3/3)" {
		t.Fatalf("case name %q", t1[0].Name)
	}
	for _, c := range t1 {
		g, p, err := Generate(c.Config)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if g.NumTasks() != c.Config.Nodes || g.NumForks() != c.Config.Branches || p.NumPEs() != c.Config.PEs {
			t.Fatalf("%s: triplet mismatch", c.Name)
		}
	}
	t4 := Table4Cases()
	if len(t4) != 10 {
		t.Fatalf("Table4Cases: %d cases", len(t4))
	}
	for i, c := range t4 {
		wantCat := ForkJoin
		if i >= 5 {
			wantCat = Flat
		}
		if c.Config.Category != wantCat {
			t.Fatalf("case %d: category %d, want %d", i, c.Config.Category, wantCat)
		}
		if _, _, err := Generate(c.Config); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
	}
}

func TestPlatformRangesRespected(t *testing.T) {
	cfg := Config{Seed: 9, Nodes: 20, PEs: 4, Branches: 2,
		WCETMin: 10, WCETMax: 20, Hetero: 0.1, BandMin: 5, BandMax: 6,
		ArmContrast: -1} // symmetric arms so the range check is exact
	_, p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for task := 0; task < p.NumTasks(); task++ {
		for pe := 0; pe < p.NumPEs(); pe++ {
			w := p.WCET(task, pe)
			if w < 10*0.9 || w > 20*1.1 {
				t.Fatalf("WCET %v outside configured range", w)
			}
			if p.Energy(task, pe) <= 0 {
				t.Fatalf("non-positive energy")
			}
		}
	}
	for i := 0; i < p.NumPEs(); i++ {
		for j := 0; j < p.NumPEs(); j++ {
			if i == j {
				continue
			}
			if bw := p.Bandwidth(i, j); bw < 5 || bw > 6 {
				t.Fatalf("bandwidth %v outside configured range", bw)
			}
		}
	}
}

func TestArmContrastSeparatesMintermEnergies(t *testing.T) {
	// With the default arm contrast, the lightest and heaviest leaf
	// minterms must differ substantially in total average energy — the
	// property the biased-profile experiments (Tables 4/5) rely on.
	for seed := int64(0); seed < 10; seed++ {
		g, p, err := Generate(Config{Seed: seed, Nodes: 22, PEs: 3, Branches: 3, Category: ForkJoin})
		if err != nil {
			t.Fatal(err)
		}
		a, err := ctg.Analyze(g)
		if err != nil {
			t.Fatal(err)
		}
		avgEnergy := func(task ctg.TaskID) float64 {
			sum := 0.0
			for pe := 0; pe < p.NumPEs(); pe++ {
				sum += p.Energy(int(task), pe)
			}
			return sum / float64(p.NumPEs())
		}
		minIdx, maxIdx := a.MinMaxWeightScenarios(avgEnergy)
		emin := a.ScenarioWeight(minIdx, avgEnergy)
		emax := a.ScenarioWeight(maxIdx, avgEnergy)
		if emax < 1.4*emin {
			t.Fatalf("seed %d: minterm energies too close: %v vs %v", seed, emin, emax)
		}
	}
}
