package ctgdvfs

import (
	"io"
	"math/rand"

	"ctgdvfs/internal/apps/cruise"
	"ctgdvfs/internal/apps/mpeg"
	"ctgdvfs/internal/apps/wlan"
	"ctgdvfs/internal/core"
	"ctgdvfs/internal/ctg"
	"ctgdvfs/internal/ctgio"
	"ctgdvfs/internal/faults"
	"ctgdvfs/internal/health"
	"ctgdvfs/internal/par"
	"ctgdvfs/internal/platform"
	"ctgdvfs/internal/sched"
	"ctgdvfs/internal/series"
	"ctgdvfs/internal/sim"
	"ctgdvfs/internal/stats"
	"ctgdvfs/internal/stretch"
	"ctgdvfs/internal/telemetry"
	"ctgdvfs/internal/tgff"
	"ctgdvfs/internal/trace"
)

// Conditional task graph model (package internal/ctg).
type (
	// Graph is a conditional task graph: tasks, (conditional) edges,
	// branch probabilities and a common deadline.
	Graph = ctg.Graph
	// GraphBuilder assembles a Graph.
	GraphBuilder = ctg.Builder
	// TaskID identifies a task in a Graph.
	TaskID = ctg.TaskID
	// Task is a vertex of the CTG.
	Task = ctg.Task
	// Edge is a (possibly conditional) dependency between tasks.
	Edge = ctg.Edge
	// Cond is the branch-outcome guard of an edge.
	Cond = ctg.Cond
	// Kind distinguishes and-nodes from or-nodes.
	Kind = ctg.Kind
	// Analysis is the scenario (leaf-minterm) decomposition of a Graph.
	Analysis = ctg.Analysis
	// Scenario is one leaf minterm: outcome assignment, probability and
	// active task set.
	Scenario = ctg.Scenario
)

// Node kinds.
const (
	// AndNode activates when all incoming edges are satisfied.
	AndNode = ctg.AndNode
	// OrNode activates when at least one incoming edge is satisfied.
	OrNode = ctg.OrNode
)

// Platform and DVFS model (package internal/platform).
type (
	// Platform is the MPSoC: per-task per-PE costs plus the interconnect.
	Platform = platform.Platform
	// PlatformBuilder assembles a Platform.
	PlatformBuilder = platform.Builder
	// DVFS is the voltage/frequency scaling model (continuous or
	// discrete speed levels).
	DVFS = platform.DVFS
)

// Scheduling and stretching (packages internal/sched, internal/stretch).
type (
	// PlanResult is a mapped, ordered and (optionally) stretched
	// schedule.
	PlanResult = sched.Schedule
	// SchedOptions selects the list-scheduler variant.
	SchedOptions = sched.Options
	// StretchResult summarizes a DVFS stretching pass.
	StretchResult = stretch.Result
	// NLPOptions tunes the NLP reference stretcher.
	NLPOptions = stretch.NLPOptions
	// ScenarioSpeeds is a scenario-conditioned DVFS table (an extension
	// beyond the paper's single speed per task).
	ScenarioSpeeds = stretch.ScenarioSpeeds
)

// Simulation (package internal/sim).
type (
	// Instance is the outcome of replaying one CTG iteration.
	Instance = sim.Instance
	// SimSummary aggregates replays over all scenarios.
	SimSummary = sim.Summary
	// SimConfig selects optional runtime-fidelity features: strict
	// or-node dependencies and DVFS switching overhead.
	SimConfig = sim.Config
	// Breakdown attributes expected energy and load to PEs and links.
	Breakdown = sim.Breakdown
)

// Adaptive runtime (package internal/core).
type (
	// Adaptive is the window-based adaptive scheduling/DVFS runtime.
	Adaptive = core.Manager
	// AdaptiveOptions configures window, threshold, DVFS and scheduler.
	AdaptiveOptions = core.Options
	// StepResult reports one processed CTG instance.
	StepResult = core.StepResult
	// RunStats aggregates a replayed vector sequence.
	RunStats = core.RunStats
	// Profiler is the sliding-window branch-probability estimator.
	Profiler = core.Profiler
	// SeriesPoint is one instant of a filtered-probability series.
	SeriesPoint = core.SeriesPoint
)

// Telemetry (packages internal/telemetry, internal/stats): the runtime's
// structured event stream, metrics registry and Chrome-trace export. Attach
// a recorder via AdaptiveOptions.Recorder or SimConfig.Recorder; a nil
// recorder keeps every instrumented path allocation-free and bit-for-bit
// identical to an uninstrumented run.
type (
	// TelemetryEvent is one structured runtime event (task slice, window
	// estimate, reschedule decision, fallback activation, ...).
	TelemetryEvent = telemetry.Event
	// TelemetryKind discriminates TelemetryEvent payloads.
	TelemetryKind = telemetry.Kind
	// TelemetryRecorder is the event sink interface; nil disables the
	// stream.
	TelemetryRecorder = telemetry.Recorder
	// MemoryRecorder buffers events in memory (feed to ChromeTrace).
	MemoryRecorder = telemetry.MemoryRecorder
	// JSONLRecorder streams events as JSON lines to a writer.
	JSONLRecorder = telemetry.JSONLRecorder
	// MultiRecorder fans one event stream out to several sinks.
	MultiRecorder = telemetry.MultiRecorder
	// MetricsRegistry is the named counter/gauge/histogram registry with
	// JSON, HTTP and expvar exposition.
	MetricsRegistry = telemetry.Registry
	// MetricsSnapshot is a point-in-time copy of a registry.
	MetricsSnapshot = telemetry.Snapshot
	// ChromeTrace exports recorded runs as Chrome trace-event JSON
	// (chrome://tracing, Perfetto).
	ChromeTrace = telemetry.ChromeTrace
	// FlightRecorder is the fixed-capacity ring-buffer recorder — the
	// runtime's black box. Steady-state recording allocates nothing; armed
	// trigger kinds dump the current window as JSONL through the sink.
	FlightRecorder = telemetry.FlightRecorder
	// FlightRecorderOptions configures a FlightRecorder (capacity, trigger
	// kinds, dump sink, cooldown).
	FlightRecorderOptions = telemetry.FlightRecorderOptions
	// Sequencer hands out the monotonic per-stream sequence ids behind event
	// provenance (Event.Seq / Event.Cause). Standalone runtimes make their
	// own; share one across runtimes only when they share a recorder.
	Sequencer = telemetry.Sequencer
	// Histogram is the fixed-bucket distribution summary behind the
	// registry and the RunStats percentiles.
	Histogram = stats.Histogram
	// Percentiles is a P50/P95/P99 summary.
	Percentiles = stats.Percentiles
)

// Telemetry event kinds.
const (
	KindInstanceStart  = telemetry.KindInstanceStart
	KindInstanceFinish = telemetry.KindInstanceFinish
	KindTaskSlice      = telemetry.KindTaskSlice
	KindCommSlice      = telemetry.KindCommSlice
	KindEstimate       = telemetry.KindEstimate
	KindReschedule     = telemetry.KindReschedule
	KindStretch        = telemetry.KindStretch
	KindOverrun        = telemetry.KindOverrun
	KindFallback       = telemetry.KindFallback
	KindGuardLevel     = telemetry.KindGuardLevel
	KindHealthAlert    = telemetry.KindHealthAlert
	KindPEDown         = telemetry.KindPEDown
	KindPEUp           = telemetry.KindPEUp
	KindLinkDown       = telemetry.KindLinkDown
	KindLinkUp         = telemetry.KindLinkUp
	KindRemap          = telemetry.KindRemap
	KindBudgetExceeded = telemetry.KindBudgetExceeded
	KindPERevoked      = telemetry.KindPERevoked
	KindTenantDegraded = telemetry.KindTenantDegraded
	KindTenantRestored = telemetry.KindTenantRestored
	KindSpan           = telemetry.KindSpan
	KindAlertFiring    = telemetry.KindAlertFiring
	KindAlertResolved  = telemetry.KindAlertResolved
)

// NewMemoryRecorder returns an empty in-memory event sink.
func NewMemoryRecorder() *MemoryRecorder { return telemetry.NewMemoryRecorder() }

// NewJSONLRecorder returns a sink streaming events as JSON lines to w
// (buffered; call Close — or Flush — before reading the output).
func NewJSONLRecorder(w io.Writer) *JSONLRecorder { return telemetry.NewJSONLRecorder(w) }

// ReadTelemetryJSONL parses a JSONL event stream back into events.
func ReadTelemetryJSONL(r io.Reader) ([]TelemetryEvent, error) { return telemetry.ReadJSONL(r) }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// NewChromeTrace returns an empty Chrome trace-event exporter.
func NewChromeTrace() *ChromeTrace { return telemetry.NewChromeTrace() }

// NewFlightRecorder builds a flight recorder (zero-value opts = 256-slot
// black box with default triggers and no automatic dumps).
func NewFlightRecorder(opts FlightRecorderOptions) *FlightRecorder {
	return telemetry.NewFlightRecorder(opts)
}

// NewSequencer returns a sequencer whose first id is 1. Install it via
// AdaptiveOptions.Sequencer to stamp Seq/Cause provenance ids on the event
// stream; FleetOptions-built runtimes share one automatically.
func NewSequencer() *Sequencer { return telemetry.NewSequencer() }

// NewMirrorRegistry returns a registry whose handles forward every write to
// the same-named handles of parent. Sample a private mirror per runtime (via
// SeriesStoreOptions.Registry) while a shared parent keeps aggregating for
// live exposition.
func NewMirrorRegistry(parent *MetricsRegistry) *MetricsRegistry {
	return telemetry.NewMirrorRegistry(parent)
}

// Time-series monitoring (package internal/series): a ring-buffer store that
// samples a metrics registry on deterministic sim-time boundaries (instance
// or fleet-round index, never wall clock), evaluates threshold/rate/absence
// alerting rules against the sampled rings, and renders sparkline watch
// views. Attach a store via AdaptiveOptions.Series (the runtime ticks it once
// per instance); a nil store keeps the run bit-for-bit identical.
type (
	// SeriesStore is the sampling ring-buffer store; Tick is allocation-free
	// at steady state.
	SeriesStore = series.Store
	// SeriesStoreOptions configures a store (registry, ring capacity,
	// alerting rules).
	SeriesStoreOptions = series.StoreOptions
	// SeriesRule is one declarative alerting rule (threshold, rate or
	// absence, with for-holds and hysteresis).
	SeriesRule = series.Rule
	// SeriesRuleSet is the JSON rules-file payload.
	SeriesRuleSet = series.RuleSet
	// SeriesAlertStatus is one rule's live firing state.
	SeriesAlertStatus = series.AlertStatus
	// SeriesDump is the serialized store state `ctgsched watch -dump` renders.
	SeriesDump = series.Dump
	// SeriesWatchOptions configures the watch rendering (sparkline width).
	SeriesWatchOptions = series.WatchOptions
)

// NewSeriesStore builds a sampling store; opts.Registry is required.
func NewSeriesStore(opts SeriesStoreOptions) *SeriesStore { return series.NewStore(opts) }

// LoadSeriesRules reads a JSON alerting-rules file and validates every rule.
func LoadSeriesRules(path string) (SeriesRuleSet, error) { return series.LoadRules(path) }

// LoadSeriesDump reads a series dump written by SeriesStore.WriteJSON (the
// `experiments -series-out` format).
func LoadSeriesDump(path string) (SeriesDump, error) { return series.LoadDump(path) }

// RenderSeriesWatch renders a dump as the sparkline terminal view behind
// `ctgsched watch`.
func RenderSeriesWatch(d SeriesDump, opts SeriesWatchOptions) string {
	return series.RenderWatch(d, opts)
}

// Health monitoring (package internal/health): streaming analyzers over the
// telemetry event stream — estimator drift detection, SLO tracking, hotspot
// attribution. Fan a HealthAnalyzer into AdaptiveOptions.Recorder (alone or
// via MultiRecorder) and read Health() at any time; the analyzer observes
// only, the run's outputs stay bit-for-bit identical.
type (
	// HealthAnalyzer is the fan-in recorder hosting the drift, SLO and
	// hotspot analyzers.
	HealthAnalyzer = health.AnalyzerRecorder
	// HealthOptions configures the analyzers; the zero value works.
	HealthOptions = health.Options
	// HealthSLO is the service-level objective a run is scored against.
	HealthSLO = health.SLO
	// HealthSnapshot is the full analyzer state (Report renders it as the
	// diagnosis text `ctgsched analyze` prints).
	HealthSnapshot = health.Snapshot
	// HealthAlert is one raised drift/miss-streak/SLO alert.
	HealthAlert = health.Alert
	// ExplainQuery selects the decision `ctgsched explain` reconstructs: an
	// exact seq id, or kind/instance/tenant filters (last match wins).
	ExplainQuery = health.ExplainQuery
	// Explanation is one reconstructed causal chain: the decision, its
	// trigger chain root-first, and its recorded downstream effects.
	Explanation = health.Explanation
	// ExplainEffect is one downstream event of an explained decision, with
	// its depth in the cause tree.
	ExplainEffect = health.ExplainEffect
	// TruncatedTailError reports a JSONL capture whose final line is torn (a
	// recorder killed mid-write); LoadTelemetry returns it alongside the
	// intact prefix — treat it as a warning, not a failure.
	TruncatedTailError = health.TruncatedTailError
)

// NewHealthAnalyzer builds a streaming health monitor.
func NewHealthAnalyzer(opts HealthOptions) *HealthAnalyzer { return health.New(opts) }

// AnalyzeTelemetry replays a recorded event stream through a fresh analyzer
// and returns the snapshot — the offline path behind `ctgsched analyze`.
func AnalyzeTelemetry(events []TelemetryEvent, opts HealthOptions) HealthSnapshot {
	return health.Analyze(events, opts)
}

// LoadTelemetry parses a recorded capture — JSONL or Chrome trace (format
// auto-detected; run selects the process of a multi-run trace) — into the
// event stream AnalyzeTelemetry consumes. Returns the detected format name.
func LoadTelemetry(data []byte, run string) ([]TelemetryEvent, string, error) {
	return health.LoadEvents(data, run)
}

// ExplainTelemetry reconstructs the causal provenance of one decision in a
// recorded event stream — the engine behind `ctgsched explain`. The stream
// must carry seq ids (recorded with a Sequencer installed).
func ExplainTelemetry(events []TelemetryEvent, q ExplainQuery) (*Explanation, error) {
	return health.Explain(events, q)
}

// TelemetryDecisions lists the stream's explainable decision events in order
// — the menu behind `ctgsched explain -list`.
func TelemetryDecisions(events []TelemetryEvent) []TelemetryEvent {
	return health.Decisions(events)
}

// DescribeTelemetryEvent renders one event as the one-line description the
// explain output uses.
func DescribeTelemetryEvent(e TelemetryEvent) string { return health.Describe(e) }

// NewHistogram builds a fixed-bucket histogram over [lo, hi].
func NewHistogram(lo, hi float64, buckets int) (*Histogram, error) {
	return stats.NewHistogram(lo, hi, buckets)
}

// SamplePercentiles summarizes a sample's P50/P95/P99.
func SamplePercentiles(xs []float64) Percentiles { return stats.SamplePercentiles(xs) }

// Fault injection (package internal/faults).
type (
	// FaultSpec parameterizes a deterministic execution-time fault plan:
	// multiplicative WCET overruns, bursty hot-task overruns and transient
	// PE slowdowns, all derived by pure hashing from the seed.
	FaultSpec = faults.Spec
	// FaultPlan is a validated, stateless fault plan; pass it via
	// SimConfig.Faults or AdaptiveOptions.Faults.
	FaultPlan = faults.Plan
	// FailureSpec parameterizes a deterministic hardware-availability
	// timeline: stochastic permanent PE deaths, transient PE outages with
	// repair times, link outages, and scripted events.
	FailureSpec = faults.FailureSpec
	// FailureEvent is one scripted availability change inside a
	// FailureSpec (kind "pe" or "link"; Duration 0 means permanent).
	FailureEvent = faults.FailureEvent
	// FailureTimeline is a validated availability timeline; pass it via
	// AdaptiveOptions.Failures to enable degraded-mode re-mapping.
	FailureTimeline = faults.Timeline
	// FaultSpecFile bundles a perturbation spec and a failure spec in one
	// JSON document (cmd/experiments -faults-spec).
	FaultSpecFile = faults.SpecFile
	// AvailabilityMask marks which PEs and links are in service at one
	// instance boundary.
	AvailabilityMask = platform.Mask
)

// Scripted availability-event kinds.
const (
	// FailureEventPE marks a FailureEvent that takes a PE out of service.
	FailureEventPE = faults.EventPE
	// FailureEventLink marks a FailureEvent that takes one directed link
	// out of service.
	FailureEventLink = faults.EventLink
)

// Workloads (packages internal/tgff, internal/apps/*, internal/trace).
type (
	// RandomConfig parameterizes the TGFF-style random CTG generator.
	RandomConfig = tgff.Config
	// RandomCategory selects fork-join (1) or flat (2) structure.
	RandomCategory = tgff.Category
	// Movie is a synthetic MPEG clip decision source.
	Movie = trace.Movie
	// Vectors is a sequence of branch decision vectors.
	Vectors = trace.Vectors
)

// Random CTG structural families.
const (
	// CategoryForkJoin is the paper's Category 1 (nested fork-join).
	CategoryForkJoin = tgff.ForkJoin
	// CategoryFlat is the paper's Category 2 (no fork-join, no nesting).
	CategoryFlat = tgff.Flat
)

// NewGraph returns an empty conditional-task-graph builder.
func NewGraph() *GraphBuilder { return ctg.NewBuilder() }

// NewPlatform returns a platform builder for the given number of tasks and
// PEs.
func NewPlatform(numTasks, numPEs int) *PlatformBuilder {
	return platform.NewBuilder(numTasks, numPEs)
}

// Uncond returns the unconditional edge guard.
func Uncond() Cond { return ctg.Uncond() }

// When returns the guard "fork selected the given outcome".
func When(fork TaskID, outcome int) Cond { return ctg.When(fork, outcome) }

// ContinuousDVFS is the paper's scaling model: any speed in (0, 1].
func ContinuousDVFS() DVFS { return platform.Continuous() }

// DiscreteDVFS restricts speeds to the given levels (must include 1).
func DiscreteDVFS(levels ...float64) DVFS { return platform.Discrete(levels...) }

// Analyze computes the scenario decomposition of a graph: leaf minterms,
// activation sets and probabilities, and the mutual-exclusion relation.
func Analyze(g *Graph) (*Analysis, error) { return ctg.Analyze(g) }

// ModifiedDLS returns the paper's scheduler options: probability-weighted
// static levels, mutual-exclusion-aware PE sharing, communication-aware
// start times.
func ModifiedDLS() SchedOptions { return sched.Modified() }

// PlainDLS returns the reference algorithm 1 ordering options.
func PlainDLS() SchedOptions { return sched.Plain() }

// Schedule maps and orders the tasks of an analyzed graph onto the platform
// with dynamic-level scheduling. All speeds start at 1; apply a stretcher to
// assign DVFS speeds.
func Schedule(a *Analysis, p *Platform, opts SchedOptions) (*PlanResult, error) {
	return sched.DLS(a, p, opts)
}

// ScheduleHEFT maps and orders with the Heterogeneous Earliest Finish Time
// heuristic (mutual-exclusion aware) — the literature's standard baseline,
// not part of the paper.
func ScheduleHEFT(a *Analysis, p *Platform) (*PlanResult, error) {
	return sched.HEFT(a, p)
}

// Stretch runs the paper's online task-stretching heuristic on a schedule,
// assigning one DVFS speed per task in scheduling order.
func Stretch(s *PlanResult, d DVFS) (*StretchResult, error) {
	return stretch.Heuristic(s, d, 0)
}

// StretchWorstCase runs the probability-blind critical-path stretcher
// (reference algorithm 1's DVFS stage).
func StretchWorstCase(s *PlanResult, d DVFS) (*StretchResult, error) {
	return stretch.WorstCase(s, d, 0)
}

// StretchNLP runs the convex-programming stretcher (reference algorithm 2's
// DVFS stage).
func StretchNLP(s *PlanResult, d DVFS, opts NLPOptions) (*StretchResult, error) {
	return stretch.NLP(s, d, opts)
}

// StretchPerScenario computes scenario-conditioned speeds for an
// unstretched schedule: each task's speed may depend on the outcomes of the
// branch forks that precede it (see stretch.PerScenario). Replay with
// SimConfig.ScenarioSpeeds.
func StretchPerScenario(s *PlanResult, d DVFS) (*ScenarioSpeeds, error) {
	return stretch.PerScenario(s, d)
}

// StretchGuarded is Stretch with a guard band: the fraction guard ∈ [0,1] of
// every task's slack is reserved as execution-time overrun margin instead of
// being spent on DVFS. Guard 0 reproduces Stretch bit-for-bit.
func StretchGuarded(s *PlanResult, d DVFS, guard float64) (*StretchResult, error) {
	return stretch.HeuristicGuarded(s, d, 0, guard)
}

// StretchPerScenarioGuarded is StretchPerScenario with a guard band (see
// StretchGuarded).
func StretchPerScenarioGuarded(s *PlanResult, d DVFS, guard float64) (*ScenarioSpeeds, error) {
	return stretch.PerScenarioGuarded(s, d, guard)
}

// Plan is the one-call online algorithm: modified DLS followed by the
// stretching heuristic under continuous DVFS.
func Plan(g *Graph, p *Platform) (*PlanResult, error) {
	return core.BuildOnline(g, p, core.Options{})
}

// TightenDeadline rebuilds the graph with deadline = factor × the nominal
// full-speed makespan of a modified-DLS schedule.
func TightenDeadline(g *Graph, p *Platform, factor float64) (*Graph, error) {
	return core.TightenDeadline(g, p, factor)
}

// Replay executes a schedule under one leaf scenario and reports energy,
// makespan and deadline compliance.
func Replay(s *PlanResult, scenario int) (Instance, error) { return sim.Replay(s, scenario) }

// ReplayDecisions resolves a full branch decision vector and replays the
// matching scenario.
func ReplayDecisions(s *PlanResult, decisions []int) (Instance, error) {
	return sim.ReplayDecisions(s, decisions)
}

// Exhaustive replays every leaf scenario and aggregates by probability.
func Exhaustive(s *PlanResult) (SimSummary, error) { return sim.Exhaustive(s) }

// ReplayCfg is Replay with runtime-fidelity options (strict or-node
// dependencies, DVFS switching overhead).
func ReplayCfg(s *PlanResult, scenario int, cfg SimConfig) (Instance, error) {
	return sim.ReplayCfg(s, scenario, cfg)
}

// ExhaustiveCfg is Exhaustive with runtime-fidelity options.
func ExhaustiveCfg(s *PlanResult, cfg SimConfig) (SimSummary, error) {
	return sim.ExhaustiveCfg(s, cfg)
}

// AnalyzeBreakdown attributes a schedule's expected energy and load to its
// PEs and the interconnect.
func AnalyzeBreakdown(s *PlanResult) Breakdown { return sim.AnalyzeBreakdown(s) }

// Sample estimates expected energy/makespan by Monte-Carlo replay of n
// instances drawn from the graph's branch probabilities — for workloads
// whose scenario count makes Exhaustive expensive.
func Sample(s *PlanResult, rng *rand.Rand, n int, cfg SimConfig) (SimSummary, error) {
	return sim.Sample(s, rng, n, cfg)
}

// NewAdaptive builds the adaptive runtime: it schedules with the graph's
// current branch probabilities and re-runs the online algorithm whenever the
// sliding-window estimates drift past the threshold.
func NewAdaptive(g *Graph, p *Platform, opts AdaptiveOptions) (*Adaptive, error) {
	return core.New(g, p, opts)
}

// RunStatic replays a decision sequence against a fixed schedule (the
// paper's non-adaptive online algorithm).
func RunStatic(s *PlanResult, vectors Vectors) (RunStats, error) {
	return core.RunStatic(s, vectors)
}

// RunStaticCfg is RunStatic with simulator options — in particular a fault
// plan, whose instance cursor advances once per vector so static and
// adaptive runtimes face the identical perturbation sequence.
func RunStaticCfg(s *PlanResult, vectors Vectors, cfg SimConfig) (RunStats, error) {
	return core.RunStaticCfg(s, vectors, cfg)
}

// RunStaticFailover replays a fixed schedule under an availability
// timeline: instances whose active tasks or comms land on dead hardware
// deadlock and are charged a miss with one full deadline of lateness. It is
// the static baseline the adaptive runtime's degraded-mode re-mapping is
// measured against (-exp failover). A nil timeline is exactly RunStaticCfg.
func RunStaticFailover(s *PlanResult, vectors Vectors, tl *FailureTimeline, cfg SimConfig) (RunStats, error) {
	return core.RunStaticFailover(s, vectors, tl, cfg)
}

// NewFailureTimeline validates a failure spec and derives the deterministic
// availability timeline for a platform with numPEs processors. The timeline
// is stateless: the mask at instance i is a pure function of (spec, i), so
// adaptive and static runtimes face the identical outage sequence, and it
// never takes the last surviving PE out of service.
func NewFailureTimeline(spec FailureSpec, numPEs int) (*FailureTimeline, error) {
	return faults.NewTimeline(spec, numPEs)
}

// LoadFaultSpecFile reads and validates a JSON fault-spec file bundling an
// execution-time perturbation spec and/or an availability failure spec.
func LoadFaultSpecFile(path string) (*FaultSpecFile, error) {
	return faults.LoadSpecFile(path)
}

// RestrictPlatform returns a view of the platform with the masked-out PEs
// and links removed from service, rejecting masks that leave no PE alive
// with *platform.InfeasibleMaskError. Schedulers called with the view place
// tasks only on surviving hardware.
func RestrictPlatform(p *Platform, m AvailabilityMask) (*Platform, error) {
	return p.Restrict(m)
}

// FullAvailability is the all-alive mask for a platform with numPEs
// processors.
func FullAvailability(numPEs int) AvailabilityMask { return platform.FullMask(numPEs) }

// NewFaultPlan validates and builds a deterministic fault plan for a
// workload of the given size. The plan is stateless: the factor applied to
// task t of instance i is a pure hash of (seed, i, t), so results never
// depend on replay order or the worker bound.
func NewFaultPlan(spec FaultSpec, numTasks, numPEs int) (*FaultPlan, error) {
	return faults.New(spec, numTasks, numPEs)
}

// NewProfiler builds a standalone sliding-window branch profiler seeded
// with the graph's current probabilities.
func NewProfiler(g *Graph, window int) (*Profiler, error) { return core.NewProfiler(g, window) }

// FilteredSeries reproduces the paper's Figure 4 mechanics for one
// two-outcome branch selection stream.
func FilteredSeries(selections []int, initProb float64, window int, threshold float64) []SeriesPoint {
	return core.FilteredSeries(selections, initProb, window, threshold)
}

// GenerateRandom builds a TGFF-style random CTG and a matching platform.
func GenerateRandom(cfg RandomConfig) (*Graph, *Platform, error) { return tgff.Generate(cfg) }

// BuildMPEG builds the MPEG macroblock decoder CTG (40 tasks, 9 branch
// forks) and its 3-PE platform.
func BuildMPEG() (*Graph, *Platform, error) { return mpeg.Build() }

// BuildCruise builds the vehicle cruise-controller CTG (32 tasks, 2 branch
// forks) and its 5-PE platform.
func BuildCruise() (*Graph, *Platform, error) { return cruise.Build() }

// BuildWLAN builds the 802.11b physical-layer receive CTG (22 tasks, a
// two-way preamble fork and a four-way rate fork) and its 3-PE platform —
// the paper's motivating example of task-level branching.
func BuildWLAN() (*Graph, *Platform, error) { return wlan.Build() }

// WLANChannelTrace generates frame decision vectors from a drifting-SNR
// 802.11b channel model.
func WLANChannelTrace(g *Graph, seed int64, n int) Vectors {
	return wlan.ChannelTrace(g, seed, n)
}

// MovieClips returns the eight synthetic MPEG movie-clip sources of the
// paper's Figure 5 / Table 2 experiment.
func MovieClips() []Movie { return trace.MovieClips() }

// RoadSequence generates cruise-controller branch decisions from a random
// sequence of road segments.
func RoadSequence(g *Graph, seed int64, n int) Vectors { return trace.RoadSequence(g, seed, n) }

// FluctuatingVectors generates decision vectors with equal long-run branch
// averages but large scene-level fluctuation (the paper's Tables 4/5
// workload).
func FluctuatingVectors(g *Graph, seed int64, n int, amplitude float64) Vectors {
	return trace.Fluctuating(g, seed, n, amplitude)
}

// AverageProbs measures the empirical per-fork outcome frequencies of a
// vector sequence.
func AverageProbs(g *Graph, v Vectors) [][]float64 { return trace.AverageProbs(g, v) }

// ApplyProfile writes a per-fork probability profile into the graph.
func ApplyProfile(g *Graph, profile [][]float64) error { return trace.ApplyProfile(g, profile) }

// SaveWorkload writes a graph and (optionally nil) platform to a file in
// the line-oriented text format of internal/ctgio.
func SaveWorkload(path string, g *Graph, p *Platform) error {
	return ctgio.WriteFile(path, g, p)
}

// LoadWorkload reads a workload file; the platform is nil when the file has
// no platform section.
func LoadWorkload(path string) (*Graph, *Platform, error) { return ctgio.ReadFile(path) }

// WriteWorkload renders a workload to an io.Writer.
func WriteWorkload(w io.Writer, g *Graph, p *Platform) error { return ctgio.Write(w, g, p) }

// ReadWorkload parses a workload from an io.Reader.
func ReadWorkload(r io.Reader) (*Graph, *Platform, error) { return ctgio.Read(r) }

// Parallelism returns the worker bound of the scenario engine (package
// internal/par): the maximum number of goroutines any one parallel stage —
// per-scenario stretching, exhaustive replay, experiment fan-out — uses.
func Parallelism() int { return par.Limit() }

// SetParallelism bounds the scenario engine's workers and returns the
// previous bound. n = 1 forces fully serial execution (useful for
// deterministic profiling baselines); n <= 0 restores the default
// (GOMAXPROCS). Results are bit-for-bit identical at every setting.
func SetParallelism(n int) int { return par.SetLimit(n) }
