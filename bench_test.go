package ctgdvfs_test

// Benchmarks that regenerate every table and figure of the paper's
// evaluation (one benchmark per table/figure — run with
// `go test -bench=. -benchmem`), plus micro-benchmarks of the pipeline
// stages. The experiment benchmarks report their headline numbers as custom
// metrics so a bench run doubles as a compact reproduction record.

import (
	"context"
	"testing"

	"ctgdvfs"
	"ctgdvfs/internal/apps/mpeg"
	"ctgdvfs/internal/core"
	"ctgdvfs/internal/exp"
	"ctgdvfs/internal/sched"
	"ctgdvfs/internal/serve"
	"ctgdvfs/internal/stretch"
	"ctgdvfs/internal/trace"
)

// BenchmarkTable1 regenerates Table 1: online heuristic vs reference
// algorithms 1 [10] and 2 [17] on five random CTGs, plus the runtime gap of
// the NLP-based stretcher.
func BenchmarkTable1(b *testing.B) {
	var r *exp.Table1Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = exp.Table1()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.AvgRef1, "ref1-normalized")
	b.ReportMetric(r.AvgRef2, "ref2-normalized")
	b.ReportMetric(r.Speedup, "nlp-speedup-x")
}

// BenchmarkFigure4 regenerates Figure 4: raw branch selections, windowed
// probability and filtered probability on the MPEG type branch.
func BenchmarkFigure4(b *testing.B) {
	var r *exp.Figure4Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = exp.Figure4()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.Updates), "filter-updates")
}

// BenchmarkFigure5Table2 regenerates Figure 5 and Table 2 together: MPEG
// energy and re-scheduling call counts over eight movie clips at thresholds
// 0.5 and 0.1.
func BenchmarkFigure5Table2(b *testing.B) {
	var r *exp.MPEGResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = exp.MPEG()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*r.SavingsT05, "savings-T0.5-pct")
	b.ReportMetric(100*r.SavingsT01, "savings-T0.1-pct")
	b.ReportMetric(r.AvgCallsT05, "calls-T0.5")
	b.ReportMetric(r.AvgCallsT01, "calls-T0.1")
}

// BenchmarkTable3 regenerates Table 3: the vehicle cruise controller over
// three road sequences.
func BenchmarkTable3(b *testing.B) {
	var r *exp.CruiseResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = exp.Cruise()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*r.AvgSaving, "savings-pct")
}

// BenchmarkTable4 regenerates Table 4: ten random CTGs with the online
// profile biased toward the lowest-energy minterm.
func BenchmarkTable4(b *testing.B) {
	benchRandom(b, exp.Table4)
}

// BenchmarkTable5 regenerates Table 5: the same CTGs with the profile
// biased toward the highest-energy minterm.
func BenchmarkTable5(b *testing.B) {
	benchRandom(b, exp.Table5)
}

// BenchmarkFigure6 regenerates Figure 6: ideal profiling vs adaptive.
func BenchmarkFigure6(b *testing.B) {
	benchRandom(b, exp.Figure6)
}

func benchRandom(b *testing.B, run func() (*exp.RandomResult, error)) {
	b.Helper()
	var r *exp.RandomResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = run()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*r.AvgSavingT05, "savings-T0.5-pct")
	b.ReportMetric(100*r.AvgSavingT01, "savings-T0.1-pct")
	b.ReportMetric(r.AvgCallsT01, "calls-T0.1")
}

// BenchmarkSweep regenerates (a trimmed grid of) the window × threshold
// extension sweep.
func BenchmarkSweep(b *testing.B) {
	var r *exp.SweepResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = exp.Sweep([]int{10, 20}, []float64{0.1, 0.5})
		if err != nil {
			b.Fatal(err)
		}
	}
	best := 0.0
	for _, c := range r.Cells {
		if c.Saving > best {
			best = c.Saving
		}
	}
	b.ReportMetric(100*best, "best-savings-pct")
}

// BenchmarkOverheadSweep regenerates the DVFS switching-overhead extension.
func BenchmarkOverheadSweep(b *testing.B) {
	var r *exp.OverheadResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = exp.Overhead()
		if err != nil {
			b.Fatal(err)
		}
	}
	last := r.Points[len(r.Points)-1]
	b.ReportMetric(float64(last.Misses), "misses-at-max-overhead")
}

// BenchmarkAblationRatio regenerates the Figure-2 ratio-denominator
// ablation.
func BenchmarkAblationRatio(b *testing.B) {
	var r *exp.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = exp.AblationRatio()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.AvgReleased, "released-vs-nlp")
	b.ReportMetric(r.AvgLiteral, "literal-vs-nlp")
}

// --- Micro-benchmarks of the pipeline stages ---

func benchWorkload(b *testing.B) (*ctgdvfs.Graph, *ctgdvfs.Platform, *ctgdvfs.Analysis) {
	b.Helper()
	g, p, err := ctgdvfs.GenerateRandom(ctgdvfs.RandomConfig{
		Seed: 99, Nodes: 25, PEs: 3, Branches: 3, Category: ctgdvfs.CategoryForkJoin,
	})
	if err != nil {
		b.Fatal(err)
	}
	g, err = ctgdvfs.TightenDeadline(g, p, 1.6)
	if err != nil {
		b.Fatal(err)
	}
	a, err := ctgdvfs.Analyze(g)
	if err != nil {
		b.Fatal(err)
	}
	return g, p, a
}

// BenchmarkAnalyze measures scenario enumeration on a 25-task 3-branch CTG.
func BenchmarkAnalyze(b *testing.B) {
	g, _, _ := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctgdvfs.Analyze(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDLS measures the modified dynamic-level scheduler.
func BenchmarkDLS(b *testing.B) {
	_, p, a := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctgdvfs.Schedule(a, p, ctgdvfs.ModifiedDLS()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeuristicStretch measures the online stretching heuristic alone
// — the stage whose low complexity enables runtime re-scheduling.
func BenchmarkHeuristicStretch(b *testing.B) {
	_, p, a := benchWorkload(b)
	base, err := ctgdvfs.Schedule(a, p, ctgdvfs.ModifiedDLS())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := base.Clone()
		if _, err := ctgdvfs.Stretch(s, ctgdvfs.ContinuousDVFS()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNLPStretch measures the NLP-based stretcher it replaces.
func BenchmarkNLPStretch(b *testing.B) {
	_, p, a := benchWorkload(b)
	base, err := ctgdvfs.Schedule(a, p, ctgdvfs.ModifiedDLS())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := base.Clone()
		if _, err := ctgdvfs.StretchNLP(s, ctgdvfs.ContinuousDVFS(), ctgdvfs.NLPOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnlineReschedule measures a full adaptive re-scheduling step
// (DLS + heuristic), the operation the threshold triggers at runtime.
func BenchmarkOnlineReschedule(b *testing.B) {
	g, p, _ := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctgdvfs.Plan(g, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplay measures one simulated CTG instance.
func BenchmarkReplay(b *testing.B) {
	g, p, a := benchWorkload(b)
	s, err := ctgdvfs.Plan(g, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctgdvfs.Replay(s, i%a.NumScenarios()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptiveStepMPEG measures the adaptive runtime's per-instance
// cost on the MPEG decoder, rescheduling included.
func BenchmarkAdaptiveStepMPEG(b *testing.B) {
	g, p, err := ctgdvfs.BuildMPEG()
	if err != nil {
		b.Fatal(err)
	}
	g, err = ctgdvfs.TightenDeadline(g, p, 1.6)
	if err != nil {
		b.Fatal(err)
	}
	vec := ctgdvfs.MovieClips()[0].Generate(g, 4096)
	mgr, err := ctgdvfs.NewAdaptive(g, p, ctgdvfs.AdaptiveOptions{Window: 20, Threshold: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mgr.Step(vec[i%len(vec)]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (design choices DESIGN.md §6 calls out) ---

// BenchmarkAblationDiscreteDVFS compares expected energy under continuous
// scaling vs 4-level discrete scaling (reported as metrics).
func BenchmarkAblationDiscreteDVFS(b *testing.B) {
	_, p, a := benchWorkload(b)
	var cont, disc float64
	for i := 0; i < b.N; i++ {
		s1, err := ctgdvfs.Schedule(a, p, ctgdvfs.ModifiedDLS())
		if err != nil {
			b.Fatal(err)
		}
		r1, err := ctgdvfs.Stretch(s1, ctgdvfs.ContinuousDVFS())
		if err != nil {
			b.Fatal(err)
		}
		s2, err := ctgdvfs.Schedule(a, p, ctgdvfs.ModifiedDLS())
		if err != nil {
			b.Fatal(err)
		}
		r2, err := ctgdvfs.Stretch(s2, ctgdvfs.DiscreteDVFS(0.25, 0.5, 0.75, 1))
		if err != nil {
			b.Fatal(err)
		}
		cont, disc = r1.ExpectedEnergy, r2.ExpectedEnergy
	}
	b.ReportMetric(cont, "energy-continuous")
	b.ReportMetric(disc, "energy-4level")
	b.ReportMetric(100*(disc-cont)/cont, "quantization-loss-pct")
}

// BenchmarkAblationProbSL compares the probability-weighted static levels
// of the modified DLS against worst-case levels, everything else equal.
func BenchmarkAblationProbSL(b *testing.B) {
	_, p, a := benchWorkload(b)
	var prob, plain float64
	for i := 0; i < b.N; i++ {
		s1, err := ctgdvfs.Schedule(a, p, ctgdvfs.ModifiedDLS())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ctgdvfs.Stretch(s1, ctgdvfs.ContinuousDVFS()); err != nil {
			b.Fatal(err)
		}
		opts := ctgdvfs.ModifiedDLS()
		opts.Probabilistic = false
		s2, err := ctgdvfs.Schedule(a, p, opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ctgdvfs.Stretch(s2, ctgdvfs.ContinuousDVFS()); err != nil {
			b.Fatal(err)
		}
		prob, plain = s1.ExpectedEnergy(), s2.ExpectedEnergy()
	}
	b.ReportMetric(prob, "energy-prob-SL")
	b.ReportMetric(plain, "energy-plain-SL")
}

// BenchmarkAblationEnergyWeight quantifies the energy-aware mapping
// extension (EnergyWeight in the scheduler options) against the paper's
// delay-only dynamic level.
func BenchmarkAblationEnergyWeight(b *testing.B) {
	_, p, a := benchWorkload(b)
	var plain, green float64
	for i := 0; i < b.N; i++ {
		s1, err := ctgdvfs.Schedule(a, p, ctgdvfs.ModifiedDLS())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ctgdvfs.Stretch(s1, ctgdvfs.ContinuousDVFS()); err != nil {
			b.Fatal(err)
		}
		opts := ctgdvfs.ModifiedDLS()
		opts.EnergyWeight = 0.5
		s2, err := ctgdvfs.Schedule(a, p, opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ctgdvfs.Stretch(s2, ctgdvfs.ContinuousDVFS()); err != nil {
			b.Fatal(err)
		}
		plain, green = s1.ExpectedEnergy(), s2.ExpectedEnergy()
	}
	b.ReportMetric(plain, "energy-delay-only-DL")
	b.ReportMetric(green, "energy-weighted-DL")
}

// BenchmarkAblationMEOverlap quantifies the value of letting mutually
// exclusive tasks share PE time.
func BenchmarkAblationMEOverlap(b *testing.B) {
	_, p, a := benchWorkload(b)
	var with, without float64
	for i := 0; i < b.N; i++ {
		s1, err := ctgdvfs.Schedule(a, p, ctgdvfs.ModifiedDLS())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ctgdvfs.Stretch(s1, ctgdvfs.ContinuousDVFS()); err != nil {
			b.Fatal(err)
		}
		opts := ctgdvfs.ModifiedDLS()
		opts.MEOverlap = false
		s2, err := ctgdvfs.Schedule(a, p, opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ctgdvfs.Stretch(s2, ctgdvfs.ContinuousDVFS()); err != nil {
			b.Fatal(err)
		}
		with, without = s1.ExpectedEnergy(), s2.ExpectedEnergy()
	}
	b.ReportMetric(with, "energy-ME-overlap")
	b.ReportMetric(without, "energy-serialized")
}

// BenchmarkPerScenarioDVFS regenerates the scenario-conditioned DVFS
// extension comparison.
func BenchmarkPerScenarioDVFS(b *testing.B) {
	var r *exp.PerScenarioResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = exp.PerScenarioDVFS()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*r.AvgSaving, "savings-over-single-speed-pct")
}

// BenchmarkHEFT measures the HEFT baseline scheduler on the standard
// 25-task workload, for comparison with BenchmarkDLS.
func BenchmarkHEFT(b *testing.B) {
	_, p, a := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctgdvfs.ScheduleHEFT(a, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDLSvsHEFT compares the two mappers' stretched expected
// energy on the standard workload.
func BenchmarkAblationDLSvsHEFT(b *testing.B) {
	_, p, a := benchWorkload(b)
	var dls, heft float64
	for i := 0; i < b.N; i++ {
		s1, err := ctgdvfs.Schedule(a, p, ctgdvfs.ModifiedDLS())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ctgdvfs.Stretch(s1, ctgdvfs.ContinuousDVFS()); err != nil {
			b.Fatal(err)
		}
		s2, err := ctgdvfs.ScheduleHEFT(a, p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ctgdvfs.Stretch(s2, ctgdvfs.ContinuousDVFS()); err != nil {
			b.Fatal(err)
		}
		dls, heft = s1.ExpectedEnergy(), s2.ExpectedEnergy()
	}
	b.ReportMetric(dls, "energy-DLS")
	b.ReportMetric(heft, "energy-HEFT")
}

// --- Parallel scenario engine: serial vs parallel baselines ---
//
// These four benchmarks measure the same two hot stages with the worker
// pool forced serial (SetParallelism(1)) and at the default bound; their
// ratio is the speedup recorded in BENCH_parallel.json. Results are
// bit-for-bit identical at every setting, so the comparison is pure
// engine overhead/speedup.

func benchMPEGSchedule(b *testing.B) *ctgdvfs.PlanResult {
	b.Helper()
	g, p, err := ctgdvfs.BuildMPEG()
	if err != nil {
		b.Fatal(err)
	}
	g, err = ctgdvfs.TightenDeadline(g, p, 1.6)
	if err != nil {
		b.Fatal(err)
	}
	a, err := ctgdvfs.Analyze(g)
	if err != nil {
		b.Fatal(err)
	}
	s, err := ctgdvfs.Schedule(a, p, ctgdvfs.ModifiedDLS())
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func benchPerScenario(b *testing.B, workers int) {
	s := benchMPEGSchedule(b)
	prev := ctgdvfs.SetParallelism(workers)
	defer ctgdvfs.SetParallelism(prev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctgdvfs.StretchPerScenario(s, ctgdvfs.ContinuousDVFS()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerScenarioSerial measures scenario-conditioned stretching of the
// MPEG decoder (one DP stretch per leaf minterm) on a single worker.
func BenchmarkPerScenarioSerial(b *testing.B) { benchPerScenario(b, 1) }

// BenchmarkPerScenarioParallel is the same workload on the default worker
// bound (GOMAXPROCS).
func BenchmarkPerScenarioParallel(b *testing.B) { benchPerScenario(b, 0) }

func benchExhaustive(b *testing.B, workers int) {
	s := benchMPEGSchedule(b)
	if _, err := ctgdvfs.Stretch(s, ctgdvfs.ContinuousDVFS()); err != nil {
		b.Fatal(err)
	}
	prev := ctgdvfs.SetParallelism(workers)
	defer ctgdvfs.SetParallelism(prev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctgdvfs.Exhaustive(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExhaustiveSerial measures all-scenario replay of the stretched
// MPEG schedule on a single worker.
func BenchmarkExhaustiveSerial(b *testing.B) { benchExhaustive(b, 1) }

// BenchmarkExhaustiveParallel is the same workload on the default worker
// bound.
func BenchmarkExhaustiveParallel(b *testing.B) { benchExhaustive(b, 0) }

// --- Telemetry overhead benchmarks (BENCH_telemetry.json) ---

// benchAdaptiveTelemetry measures the adaptive runtime's per-instance cost
// on the MPEG decoder under a given telemetry configuration. With a nil
// recorder this is the telemetry-disabled path — compare against
// BenchmarkAdaptiveStepMPEG (the uninstrumented call pattern) to read the
// overhead of the always-on instrumentation hooks.
func benchAdaptiveTelemetry(b *testing.B, rec ctgdvfs.TelemetryRecorder, reg *ctgdvfs.MetricsRegistry) {
	g, p, err := ctgdvfs.BuildMPEG()
	if err != nil {
		b.Fatal(err)
	}
	g, err = ctgdvfs.TightenDeadline(g, p, 1.6)
	if err != nil {
		b.Fatal(err)
	}
	vec := ctgdvfs.MovieClips()[0].Generate(g, 4096)
	mgr, err := ctgdvfs.NewAdaptive(g, p, ctgdvfs.AdaptiveOptions{
		Window: 20, Threshold: 0.1, Recorder: rec, Metrics: reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mgr.Step(vec[i%len(vec)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptiveStepTelemetryOff is the telemetry-disabled adaptive step:
// every emission site nil-checks and skips, only the metrics mirror runs.
func BenchmarkAdaptiveStepTelemetryOff(b *testing.B) {
	benchAdaptiveTelemetry(b, nil, nil)
}

// BenchmarkAdaptiveStepTelemetryMemory records the full event stream into a
// memory recorder (reset periodically so the buffer doesn't dominate).
func BenchmarkAdaptiveStepTelemetryMemory(b *testing.B) {
	rec := ctgdvfs.NewMemoryRecorder()
	benchAdaptiveTelemetry(b, rec, ctgdvfs.NewMetricsRegistry())
	b.ReportMetric(float64(rec.Len())/float64(b.N), "events/op")
}

// --- Provenance benchmarks (BENCH_provenance.json) ---

// flightBenchEvent is a representative non-trigger event: the ring stores it
// without firing a dump, which is the recorder's steady state.
var flightBenchEvent = ctgdvfs.TelemetryEvent{
	Kind: ctgdvfs.KindTaskSlice, Instance: 7, Seq: 42, Cause: 41,
	Task: 3, PE: 1, Start: 10, End: 12, Speed: 0.8, Energy: 1.6,
}

// BenchmarkFlightRecorderRecord measures the flight recorder's steady-state
// ring write. Zero allocs/op is the design invariant that makes the black
// box safe to leave always on (gated by benchgate).
func BenchmarkFlightRecorderRecord(b *testing.B) {
	fr := ctgdvfs.NewFlightRecorder(ctgdvfs.FlightRecorderOptions{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr.Record(flightBenchEvent)
	}
}

// BenchmarkFlightRecorderDisabled measures the nil-receiver path — "flight
// recorder not installed" must cost one branch and zero allocations.
func BenchmarkFlightRecorderDisabled(b *testing.B) {
	var fr *ctgdvfs.FlightRecorder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr.Record(flightBenchEvent)
	}
}

// BenchmarkAdaptiveStepFlight is the adaptive step with an always-on flight
// recorder in pure black-box mode (no dump sink). Compare against
// BenchmarkAdaptiveStepTelemetryOff (nil recorder) for the cost of keeping
// the black box running, and BenchmarkAdaptiveStepTelemetryMemory for the
// cost of unbounded capture; sequencing (Seq/Cause stamping) is active in
// both recorded configurations.
func BenchmarkAdaptiveStepFlight(b *testing.B) {
	fr := ctgdvfs.NewFlightRecorder(ctgdvfs.FlightRecorderOptions{})
	benchAdaptiveTelemetry(b, fr, nil)
	b.ReportMetric(float64(fr.Total())/float64(b.N), "events/op")
}

// --- Failover benchmarks (BENCH_failover.json) ---

// benchAdaptiveFailover measures the adaptive runtime's per-instance cost
// on the MPEG decoder under an availability timeline. With a nil spec this
// is the no-timeline path — compare against BenchmarkAdaptiveStepMPEG to
// read the overhead of the per-boundary mask check; with outages enabled
// the cost of degraded-mode re-mapping and recovery amortizes in.
func benchAdaptiveFailover(b *testing.B, spec *ctgdvfs.FailureSpec) {
	g, p, err := ctgdvfs.BuildMPEG()
	if err != nil {
		b.Fatal(err)
	}
	g, err = ctgdvfs.TightenDeadline(g, p, 1.6)
	if err != nil {
		b.Fatal(err)
	}
	vec := ctgdvfs.MovieClips()[0].Generate(g, 4096)
	opts := ctgdvfs.AdaptiveOptions{Window: 20, Threshold: 0.1}
	if spec != nil {
		tl, err := ctgdvfs.NewFailureTimeline(*spec, p.NumPEs())
		if err != nil {
			b.Fatal(err)
		}
		opts.Failures = tl
	}
	mgr, err := ctgdvfs.NewAdaptive(g, p, opts)
	if err != nil {
		b.Fatal(err)
	}
	remapped := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mgr.Step(vec[i%len(vec)])
		if err != nil {
			b.Fatal(err)
		}
		if res.Remapped {
			remapped++
		}
	}
	b.ReportMetric(float64(remapped)/float64(b.N), "remaps/op")
}

// BenchmarkAdaptiveStepFailoverOff is the adaptive step with the failover
// machinery compiled in but no timeline attached (the bit-for-bit path).
func BenchmarkAdaptiveStepFailoverOff(b *testing.B) {
	benchAdaptiveFailover(b, nil)
}

// BenchmarkAdaptiveStepFailover steps through a 2%-outage timeline with
// 10-instance repairs: most boundaries only compare masks, a few percent
// pay a degraded re-map or a cached restore.
func BenchmarkAdaptiveStepFailover(b *testing.B) {
	benchAdaptiveFailover(b, &ctgdvfs.FailureSpec{Seed: 42, PEFailProb: 0.02, PERepair: 10})
}

// --- Large-scale tier benchmarks (BENCH_scale.json) ---
//
// The scale tier measures the rescheduling pipeline on a 10³-task CTG over
// 16 PEs — the regime where the warm-start path earns its keep. The
// Full/Warm pair is the committed speedup claim: a small-drift update (one
// fork's probabilities changed) served by the incremental path versus a full
// DLS + stretch recompute. The warm benchmark is alloc-gated: its steady
// state reuses every buffer, and a new per-call allocation on this path is a
// regression by design.

func benchScale1k(b *testing.B) (*ctgdvfs.Graph, *ctgdvfs.Platform, *ctgdvfs.Analysis) {
	b.Helper()
	g0, p, err := exp.ScaleWorkload(exp.ScaleConfig{Tasks: 1000, PEs: 16, Forks: 5})
	if err != nil {
		b.Fatal(err)
	}
	g, err := ctgdvfs.TightenDeadline(g0, p, 2.0)
	if err != nil {
		b.Fatal(err)
	}
	a, err := ctgdvfs.Analyze(g)
	if err != nil {
		b.Fatal(err)
	}
	return g, p, a
}

// BenchmarkScaleDLS1k measures the modified DLS mapper alone at 10³ tasks on
// 16 PEs (with a reused workspace, as the adaptive manager runs it).
func BenchmarkScaleDLS1k(b *testing.B) {
	_, p, a := benchScale1k(b)
	ws := sched.NewWorkspace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.DLSInto(a, p, sched.Modified(), ws); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScaleRescheduleFull1k measures a full adaptive reschedule (DLS +
// stretching heuristic) at 10³ tasks — the cost every drift pays without
// warm-starting.
func BenchmarkScaleRescheduleFull1k(b *testing.B) {
	_, p, a := benchScale1k(b)
	ws := sched.NewWorkspace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := sched.DLSInto(a, p, sched.Modified(), ws)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := stretch.HeuristicGuarded(s, ctgdvfs.ContinuousDVFS(), 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScaleRescheduleWarm1k measures the incremental reschedule for the
// same workload under a small drift (fork 0 changed): copy the incumbent
// skeleton into a reused buffer and re-stretch only the affected conditional
// arms. The ratio to BenchmarkScaleRescheduleFull1k is the committed
// warm-start speedup.
func BenchmarkScaleRescheduleWarm1k(b *testing.B) {
	_, p, a := benchScale1k(b)
	s, err := sched.DLS(a, p, sched.Modified())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := stretch.HeuristicGuarded(s, ctgdvfs.ContinuousDVFS(), 0, 0); err != nil {
		b.Fatal(err)
	}
	affected := core.AffectedByDrift(a, []int{0})
	warm := sched.NewWarmState()
	ws := stretch.NewWorkspace()
	// Fill both double buffers and bind the workspace outside the timer.
	for i := 0; i < 2; i++ {
		target := warm.Start(s)
		ws.Rebind(target)
		if _, err := stretch.HeuristicPartial(target, ctgdvfs.ContinuousDVFS(), 0, affected, ws); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target := warm.Start(s)
		if _, err := stretch.HeuristicPartial(target, ctgdvfs.ContinuousDVFS(), 0, affected, ws); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Consolidation-fleet benchmarks (BENCH_consolidation.json) ---
//
// The fleet tier measures one consolidated round — every tenant's adaptive
// step plus the chip-power accounting — on the two-tenant mpeg>cruise mix
// over the shared 8-PE fabric, with the cap at 85% of the mix's measured
// ungoverned peak. The Ungoverned/Governed pair is the committed cost of
// budget governance: the ungoverned arm only meters the cap, the governed
// arm runs the full degradation ladder (its setup predicts every rung's
// power, and the tight cap keeps the governor escalating and restoring in
// steady state).

func benchFleetStep(b *testing.B, ungoverned bool) {
	f, vectors, err := exp.NewConsolidationBenchFleet(ungoverned)
	if err != nil {
		b.Fatal(err)
	}
	n := len(vectors[0])
	for _, vs := range vectors {
		if len(vs) < n {
			n = len(vs)
		}
	}
	step := make([][]int, len(vectors))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := range vectors {
			step[t] = vectors[t][i%n]
		}
		if err := f.Step(step); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if p := f.Result().Power; p != nil {
		b.ReportMetric(float64(p.MaxLevel), "max-level")
		b.ReportMetric(float64(p.WindowsOverCap)/float64(b.N), "over-windows/op")
	}
}

// BenchmarkFleetStepUngoverned is the consolidated round with metering only.
func BenchmarkFleetStepUngoverned(b *testing.B) { benchFleetStep(b, true) }

// BenchmarkFleetStepGoverned runs the full budget governor under a cap the
// undegraded mix cannot hold.
func BenchmarkFleetStepGoverned(b *testing.B) { benchFleetStep(b, false) }

// --- Monitoring benchmarks (BENCH_monitor.json) ---

// benchSeriesRegistry builds a registry shaped like a manager's: a handful of
// counters and gauges plus two histograms, all with live values.
func benchSeriesRegistry() *ctgdvfs.MetricsRegistry {
	reg := ctgdvfs.NewMetricsRegistry()
	for _, n := range []string{"adaptive.instances", "adaptive.misses", "adaptive.calls",
		"adaptive.cache_hits", "adaptive.overruns"} {
		reg.Counter(n).Add(17)
	}
	for _, n := range []string{"adaptive.miss_rate", "adaptive.miss_rate_window",
		"adaptive.guard_level", "adaptive.drift"} {
		reg.Gauge(n).Set(0.25)
	}
	for _, n := range []string{"adaptive.makespan", "adaptive.lateness"} {
		h := reg.Histogram(n, 0, 100, 32)
		for i := 0; i < 64; i++ {
			h.Observe(float64(i))
		}
	}
	return reg
}

// BenchmarkSeriesTick measures the sampler's steady-state cost: one Tick over
// the representative registry with every handle already discovered. Zero
// allocs/op is the design invariant that makes the store safe to leave always
// on (gated by benchgate).
func BenchmarkSeriesTick(b *testing.B) {
	reg := benchSeriesRegistry()
	st := ctgdvfs.NewSeriesStore(ctgdvfs.SeriesStoreOptions{Registry: reg})
	st.Tick(0, nil, nil, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Tick(i+1, nil, nil, 0)
	}
}

// BenchmarkSeriesTickRules adds four armed-but-quiet alert rules (threshold,
// rate and absence) to the sampled tick — the always-on alerting engine's
// steady state, which must stay allocation-free too (gated).
func BenchmarkSeriesTickRules(b *testing.B) {
	reg := benchSeriesRegistry()
	st := ctgdvfs.NewSeriesStore(ctgdvfs.SeriesStoreOptions{Registry: reg, Rules: []ctgdvfs.SeriesRule{
		{Name: "miss", Metric: "adaptive.miss_rate_window", Value: 10},
		{Name: "guard", Metric: "adaptive.guard_level", Op: ">=", Value: 10},
		{Name: "climb", Metric: "adaptive.miss_rate", Kind: "rate", Value: 10},
		{Name: "late", Metric: "adaptive.lateness.p95", Value: 1e9},
	}})
	rec := ctgdvfs.NewMemoryRecorder()
	seq := ctgdvfs.NewSequencer()
	st.Tick(0, rec, seq, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Tick(i+1, rec, seq, 0)
	}
}

// BenchmarkAdaptiveStepSeries is the MPEG adaptive step with a series store
// sampling the manager's own registry on every instance boundary — compare
// against BenchmarkAdaptiveStepTelemetryOff for the cost of always-on
// sampling.
func BenchmarkAdaptiveStepSeries(b *testing.B) {
	g, p, err := ctgdvfs.BuildMPEG()
	if err != nil {
		b.Fatal(err)
	}
	g, err = ctgdvfs.TightenDeadline(g, p, 1.6)
	if err != nil {
		b.Fatal(err)
	}
	vec := ctgdvfs.MovieClips()[0].Generate(g, 4096)
	st := ctgdvfs.NewSeriesStore(ctgdvfs.SeriesStoreOptions{Registry: ctgdvfs.NewMetricsRegistry()})
	mgr, err := ctgdvfs.NewAdaptive(g, p, ctgdvfs.AdaptiveOptions{
		Window: 20, Threshold: 0.1, Metrics: st.Registry(), Series: st,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mgr.Step(vec[i%len(vec)]); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDaemon builds an in-process serving daemon with one mpeg tenant and
// its seeded decision-vector cycle. Checkpointing and event sinks are off:
// the measurement is the serve loop itself (admission, queue hand-off,
// worker dispatch, reply) around the adaptive step.
func benchDaemon(b *testing.B, threshold float64) (*serve.Server, [][]int) {
	b.Helper()
	srv, err := serve.New(serve.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Abandon() })
	_, err = srv.CreateTenant(serve.TenantSpec{
		Name: "bench", Workload: "mpeg", DeadlineFactor: 1.6, Threshold: threshold,
	})
	if err != nil {
		b.Fatal(err)
	}
	g, _, err := mpeg.Build()
	if err != nil {
		b.Fatal(err)
	}
	return srv, trace.Fluctuating(g, 1, 256, 0.4)
}

// BenchmarkDaemonStepServe is the daemon's steady-state serve loop: one
// in-process Step round trip (admission check, bounded-queue hand-off,
// worker step, reply) with the drift threshold at its maximum so the pipeline
// (almost) never recomputes — the cost of hosting a tenant behind the daemon rather
// than calling the manager directly. Alloc-gated: the serve loop's overhead
// per request is a fixed small number of allocations (request/reply
// envelopes and the committed decision-log entry), independent of tenant
// state size.
func BenchmarkDaemonStepServe(b *testing.B) {
	srv, vecs := benchDaemon(b, 1)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Step(ctx, "bench", vecs[i%len(vecs)], serve.ChaosSpec{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDaemonStepResched is the same round trip with a near-zero drift
// threshold, so every request runs the full reschedule pipeline — the
// worst-case per-request cost a tenant can impose on its own worker (other
// tenants are unaffected; workers are per-tenant).
func BenchmarkDaemonStepResched(b *testing.B) {
	srv, vecs := benchDaemon(b, 1e-9)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Step(ctx, "bench", vecs[i%len(vecs)], serve.ChaosSpec{}); err != nil {
			b.Fatal(err)
		}
	}
}
