// Package ctgdvfs is a library for adaptive scheduling and dynamic
// voltage/frequency scaling (DVFS) of multiprocessor real-time applications
// with non-deterministic workload, reproducing Malani, Mukre, Qiu, Wu,
// "Adaptive Scheduling and Voltage Scaling for Multiprocessor Real-time
// Applications with Non-deterministic Workload" (DATE 2008).
//
// Applications are modeled as conditional task graphs (CTGs): acyclic task
// graphs in which branch fork nodes activate or deactivate whole subgraphs
// at runtime depending on input data. The library provides:
//
//   - the CTG model with scenario (minterm) analysis, mutual exclusion and
//     branch probabilities (see NewGraph / Analyze),
//   - an MPSoC platform model with per-PE execution costs, point-to-point
//     communication links, and continuous or discrete DVFS (NewPlatform),
//   - the paper's modified dynamic-level scheduler (Schedule) and online
//     task-stretching heuristic (Stretch), plus the two reference DVFS
//     algorithms it is evaluated against (StretchWorstCase, StretchNLP),
//   - a scenario replay simulator (Replay, Exhaustive) that measures
//     per-instance energy, timing and deadline compliance, and
//   - the adaptive runtime (NewAdaptive): sliding-window branch-probability
//     profiling with threshold-triggered online re-scheduling.
//
// The workload generators behind the paper's evaluation — TGFF-style random
// CTGs, the MPEG macroblock decoder, the vehicle cruise controller, and the
// synthetic branch-decision traces — are exposed through GenerateRandom,
// BuildMPEG, BuildCruise and the trace helpers, and every table and figure
// of the paper can be regenerated with the cmd/experiments tool or the
// benchmarks in bench_test.go.
//
// A minimal end-to-end use:
//
//	b := ctgdvfs.NewGraph()
//	fork := b.AddTask("decide", ctgdvfs.AndNode)
//	a := b.AddTask("fast path", ctgdvfs.AndNode)
//	c := b.AddTask("slow path", ctgdvfs.AndNode)
//	b.AddCondEdge(fork, a, 1.0, 0)
//	b.AddCondEdge(fork, c, 1.0, 1)
//	b.SetBranchProbs(fork, []float64{0.8, 0.2})
//	g, _ := b.Build(100) // common deadline
//
//	p, _ := ctgdvfs.NewPlatform(3, 2).SetUniformTask(0, 5, 5).
//		SetUniformTask(1, 10, 10).SetUniformTask(2, 20, 20).
//		SetAllLinks(4, 0.1).Build()
//
//	s, _ := ctgdvfs.Plan(g, p) // map, order and stretch
//	fmt.Println(s.ExpectedEnergy())
package ctgdvfs
